package arch

import (
	"testing"

	"sei/internal/nn"
	"sei/internal/power"
	"sei/internal/quant"
	"sei/internal/seicore"
)

// net1Geometry builds Network 1's geometry from an untrained (weights
// are irrelevant to geometry) Table-2 network.
func netGeometry(t *testing.T, id int) []LayerGeom {
	t.Helper()
	q, err := quant.Extract(nn.NewTableNetwork(id, 1), []int{1, 28, 28})
	if err != nil {
		t.Fatal(err)
	}
	geoms, err := GeometryOf(q)
	if err != nil {
		t.Fatal(err)
	}
	return geoms
}

func TestGeometryNetwork1(t *testing.T) {
	geoms := netGeometry(t, 1)
	if len(geoms) != 3 {
		t.Fatalf("got %d layers, want 3", len(geoms))
	}
	// Table 2: weight matrix 1 = 25×12, matrix 2 = 300×64, FC 1024×10.
	checks := []struct {
		n, m, uses, unique int
	}{
		{25, 12, 24 * 24, 28 * 28},
		{300, 64, 8 * 8, 12 * 12 * 12},
		{1024, 10, 1, 1024},
	}
	for i, want := range checks {
		g := geoms[i]
		if g.N != want.n || g.M != want.m || g.Uses != want.uses || g.UniqueInputs != want.unique {
			t.Fatalf("layer %d geometry %+v, want %+v", i, g, want)
		}
	}
	if !geoms[2].IsFC || geoms[0].IsFC {
		t.Fatal("IsFC flags wrong")
	}
}

func TestGeometryOpsMatchNetworkOps(t *testing.T) {
	for id := 1; id <= 3; id++ {
		net := nn.NewTableNetwork(id, 1)
		geoms := netGeometry(t, id)
		var total int64
		for _, g := range geoms {
			total += g.Ops()
		}
		if want := net.Ops([]int{1, 28, 28}); total != want {
			t.Fatalf("network %d geometry ops %d, want %d", id, total, want)
		}
	}
}

func TestMapDACADCCounts(t *testing.T) {
	geoms := netGeometry(t, 1)
	m, err := Map(geoms, DefaultConfig(seicore.StructDACADC))
	if err != nil {
		t.Fatal(err)
	}
	conv2 := m.Layers[1]
	// 300 rows fit in one 512 block: ADC conversions = 64 uses... no:
	// uses=64, M=64, 4 crossbars, 1 row block → 64·64·4.
	if want := int64(64 * 64 * 4); conv2.Counts.ADCConversions != want {
		t.Fatalf("conv2 ADC conversions %d, want %d", conv2.Counts.ADCConversions, want)
	}
	// Per-row-per-use DAC conversions: 300 rows × 64 positions.
	if conv2.Counts.DACConversions != 300*64 {
		t.Fatalf("conv2 DAC conversions %d, want 19200", conv2.Counts.DACConversions)
	}
	fc := m.Layers[2]
	// FC: 1024 rows → 2 row blocks at 512 → 4·2 crossbars, ADC = 10·8.
	if fc.RowBlocks != 2 || fc.Counts.ADCConversions != 80 {
		t.Fatalf("FC rowBlocks %d ADC %d, want 2/80", fc.RowBlocks, fc.Counts.ADCConversions)
	}
	if fc.Inventory.DACs != 1024 || fc.Inventory.ADCs != 80 {
		t.Fatalf("FC inventory DACs %d ADCs %d", fc.Inventory.DACs, fc.Inventory.ADCs)
	}
	// DRAM fetch charged once, to the first layer.
	if m.Layers[0].Counts.DRAMBytes != 784 || m.Layers[1].Counts.DRAMBytes != 0 {
		t.Fatal("DRAM fetch accounting wrong")
	}
}

func TestMapSmallerCrossbarIncreasesADC(t *testing.T) {
	geoms := netGeometry(t, 1)
	big, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
	cfg := DefaultConfig(seicore.StructDACADC)
	cfg.MaxCrossbar = 256
	small, err := Map(geoms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Conv2 (300 rows) splits into 2 blocks at 256 → ADC doubles.
	if small.Layers[1].Counts.ADCConversions != 2*big.Layers[1].Counts.ADCConversions {
		t.Fatalf("conv2 ADC at 256: %d, want double of %d",
			small.Layers[1].Counts.ADCConversions, big.Layers[1].Counts.ADCConversions)
	}
	// Total energy must rise — Table 5's 74.25 → 93.75 µJ pattern.
	lib := power.DefaultLibrary()
	_, eBig := big.Energy(lib)
	_, eSmall := small.Energy(lib)
	if eSmall.Total() <= eBig.Total() {
		t.Fatalf("smaller crossbars should cost more energy: %v vs %v", eSmall.Total(), eBig.Total())
	}
}

func TestMapSEIBlockCounts(t *testing.T) {
	geoms := netGeometry(t, 1)
	m, err := Map(geoms, DefaultConfig(seicore.StructSEI))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: conv2 1200×64 → 3 blocks; FC 4096×10 → 8 blocks.
	if m.Layers[1].RowBlocks != 3 {
		t.Fatalf("SEI conv2 blocks %d, want 3", m.Layers[1].RowBlocks)
	}
	if m.Layers[2].RowBlocks != 8 {
		t.Fatalf("SEI FC blocks %d, want 8", m.Layers[2].RowBlocks)
	}
	// Input stage keeps DACs; deeper stages have none.
	if m.Layers[0].Inventory.DACs != 25 || m.Layers[1].Inventory.DACs != 0 {
		t.Fatal("SEI DAC inventory wrong")
	}
	// Conv stages use SAs, not ADCs.
	if m.Layers[1].Inventory.ADCs != 0 || m.Layers[1].Inventory.SAs != 64*3 {
		t.Fatalf("SEI conv2 interfaces: ADCs %d SAs %d", m.Layers[1].Inventory.ADCs, m.Layers[1].Inventory.SAs)
	}
	// FC reads out through per-block column ADCs.
	if m.Layers[2].Inventory.ADCs != 80 || m.Layers[2].Counts.ADCConversions != 80 {
		t.Fatalf("SEI FC ADCs %d conv %d, want 80/80", m.Layers[2].Inventory.ADCs, m.Layers[2].Counts.ADCConversions)
	}
}

// The headline Fig.-1 property: DAC+ADC interfaces dominate the
// baseline design.
func TestFig1InterfacesDominate(t *testing.T) {
	lib := power.DefaultLibrary()
	geoms := netGeometry(t, 1)
	m, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
	perE, totalE := m.Energy(lib)
	if frac := totalE.InterfaceFraction(); frac < 0.98 {
		t.Fatalf("interface energy fraction %.4f, want ≥ 0.98", frac)
	}
	_, totalA := m.Area(lib)
	if frac := totalA.InterfaceFraction(); frac < 0.98 {
		t.Fatalf("interface area fraction %.4f, want ≥ 0.98", frac)
	}
	for i, e := range perE {
		if e.InterfaceFraction() < 0.9 {
			t.Fatalf("layer %d interface energy fraction %.4f, want ≥ 0.9", i, e.InterfaceFraction())
		}
	}
}

// The headline Table-5 property: SEI saves ≥95% energy vs DAC+ADC and
// ≥90% vs 1-bit+ADC; area saving lands in the paper's 74–86%+ band.
func TestTable5SavingsShape(t *testing.T) {
	lib := power.DefaultLibrary()
	for id := 1; id <= 3; id++ {
		geoms := netGeometry(t, id)
		base, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
		onebit, _ := Map(geoms, DefaultConfig(seicore.StructOneBitADC))
		sei, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
		_, eBase := base.Energy(lib)
		_, eOne := onebit.Energy(lib)
		_, eSEI := sei.Energy(lib)
		saveSEI := 1 - eSEI.Total()/eBase.Total()
		saveSEIvsOne := 1 - eSEI.Total()/eOne.Total()
		// Paper Table 5: 96.52 / 94.37 / 95.89 % for networks 1–3.
		if saveSEI < 0.93 {
			t.Errorf("network %d: SEI energy saving %.4f, want ≥ 0.93", id, saveSEI)
		}
		if saveSEIvsOne < 0.90 {
			t.Errorf("network %d: SEI vs 1-bit+ADC saving %.4f, want ≥ 0.90", id, saveSEIvsOne)
		}
		saveOne := 1 - eOne.Total()/eBase.Total()
		if saveOne < 0.02 || saveOne > 0.45 {
			t.Errorf("network %d: 1-bit+ADC saving %.4f outside the paper's modest band", id, saveOne)
		}
		_, aBase := base.Area(lib)
		_, aSEI := sei.Area(lib)
		saveArea := 1 - aSEI.Total()/aBase.Total()
		if saveArea < 0.70 || saveArea > 0.95 {
			t.Errorf("network %d: SEI area saving %.4f outside [0.70,0.95]", id, saveArea)
		}
	}
}

// Section 3.2: the input layer's DACs are a small part of the baseline
// chip energy (paper: ≈3%).
func TestInputDACsSmallFraction(t *testing.T) {
	lib := power.DefaultLibrary()
	geoms := netGeometry(t, 1)
	m, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
	perE, totalE := m.Energy(lib)
	inputDAC := perE[0].DAC
	if frac := inputDAC / totalE.Total(); frac > 0.10 {
		t.Fatalf("input DAC fraction %.4f, want ≤ 0.10", frac)
	}
}

// Section 5.3: SEI exceeds 2000 GOPs/J-scale efficiency, orders above
// the FPGA/GPU baselines.
func TestSEIEfficiency(t *testing.T) {
	lib := power.DefaultLibrary()
	for id := 1; id <= 3; id++ {
		geoms := netGeometry(t, id)
		sei, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
		eff := sei.Efficiency(lib)
		// The paper's >2000 GOPs/J headline comes from Network 1 (its op
		// counter also credits ~2× our MAC-only count); the small
		// networks are interface-bound and land lower there too.
		if id == 1 && eff < 800 {
			t.Errorf("network 1: SEI efficiency %.0f GOPs/J, want ≥ 800", eff)
		}
		base, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
		if eff < 8*base.Efficiency(lib) {
			t.Errorf("network %d: SEI efficiency %.0f not ≫ baseline %.0f", id, eff, base.Efficiency(lib))
		}
	}
}

func TestMapValidation(t *testing.T) {
	geoms := netGeometry(t, 1)
	cfg := DefaultConfig(seicore.StructDACADC)
	cfg.MaxCrossbar = 0
	if _, err := Map(geoms, cfg); err == nil {
		t.Fatal("accepted zero crossbar size")
	}
	if _, err := Map(nil, DefaultConfig(seicore.StructSEI)); err == nil {
		t.Fatal("accepted empty geometry")
	}
	cfg = DefaultConfig(seicore.Structure(42))
	if _, err := Map(geoms, cfg); err == nil {
		t.Fatal("accepted unknown structure")
	}
}

func TestUnipolarModeUsesFewerCells(t *testing.T) {
	geoms := netGeometry(t, 3)
	bip, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	cfg := DefaultConfig(seicore.StructSEI)
	cfg.Mode = seicore.ModeUnipolarDynamic
	uni, err := Map(geoms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two cells per weight instead of four → fewer cells and blocks.
	if uni.TotalInventory().Cells >= bip.TotalInventory().Cells {
		t.Fatalf("unipolar cells %d not < bipolar %d",
			uni.TotalInventory().Cells, bip.TotalInventory().Cells)
	}
	if uni.Layers[2].RowBlocks > bip.Layers[2].RowBlocks {
		t.Fatal("unipolar FC should not need more blocks")
	}
}

func TestTotalsAreSums(t *testing.T) {
	geoms := netGeometry(t, 2)
	m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	var adc int64
	for _, l := range m.Layers {
		adc += l.Counts.ADCConversions
	}
	if m.TotalCounts().ADCConversions != adc {
		t.Fatal("TotalCounts does not sum layers")
	}
	var cellsN int64
	for _, l := range m.Layers {
		cellsN += l.Inventory.Cells
	}
	if m.TotalInventory().Cells != cellsN {
		t.Fatal("TotalInventory does not sum layers")
	}
}
