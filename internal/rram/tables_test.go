package rram

import "testing"

func TestReadoutParams(t *testing.T) {
	m := DefaultDeviceModel()
	if p := m.Readout(); !p.Ideal() || !p.Linear() {
		t.Errorf("default device read-out %+v, want ideal and linear", p)
	}

	m.ReadNoiseSigma = 0.05
	if p := m.Readout(); p.Ideal() || p.NoiseSigma != 0.05 || p.PerCell {
		t.Errorf("per-column noisy read-out %+v", p)
	}

	m.ReadNoisePerCell = true
	if p := m.Readout(); !p.PerCell {
		t.Errorf("per-cell flag lost: %+v", m.Readout())
	}

	// PerCell without a sigma is inert: the read-out is still ideal.
	m.ReadNoiseSigma = 0
	if p := m.Readout(); p.PerCell || !p.Ideal() {
		t.Errorf("sigma-free per-cell read-out %+v, want ideal", p)
	}

	m.IRDropAlpha = 0.1
	if p := m.Readout(); p.Ideal() || !p.Linear() || p.IRAlpha != 0.1 {
		t.Errorf("IR-drop read-out %+v", p)
	}

	m.IVNonlinearity = 2
	if p := m.Readout(); p.Linear() || p.IVUnits != 2 {
		t.Errorf("nonlinear read-out %+v", p)
	}
}

func TestLevelTableMatchesLevelConductance(t *testing.T) {
	for _, bits := range []int{1, 2, 4, 6, 8} {
		m := IdealDeviceModel(bits)
		tab := m.LevelTable()
		if len(tab) != m.Levels() {
			t.Fatalf("bits=%d: table has %d entries, want %d", bits, len(tab), m.Levels())
		}
		for lvl, g := range tab {
			if g != m.LevelConductance(lvl) {
				t.Errorf("bits=%d level %d: table %v, method %v", bits, lvl, g, m.LevelConductance(lvl))
			}
		}
		if tab[0] != m.GOff || tab[len(tab)-1] != m.GOn {
			t.Errorf("bits=%d: table endpoints [%v,%v], want [%v,%v]",
				bits, tab[0], tab[len(tab)-1], m.GOff, m.GOn)
		}
	}
}
