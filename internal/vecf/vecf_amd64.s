//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mulAccLanes64AVX2(acc, x, w *float64, m int)
//
// acc[c*64+i] += w[c] * x[i] for c in [0,m), i in [0,64). VMULPD then
// VADDPD — two separately rounded IEEE operations per element, never a
// fused multiply-add — so every lane matches the scalar expression
// acc += w*x bit for bit.
TEXT ·mulAccLanes64AVX2(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ m+24(FP), CX
	TESTQ CX, CX
	JZ   macdone

macw:
	VBROADCASTSD (DX), Y0
	MOVQ DI, R8
	MOVQ SI, R9
	MOVQ $8, BX // 8 iterations x 8 doubles = 64 lanes

maclanes:
	VMOVUPD (R9), Y1
	VMOVUPD 32(R9), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (R8), Y1, Y1
	VADDPD  32(R8), Y2, Y2
	VMOVUPD Y1, (R8)
	VMOVUPD Y2, 32(R8)
	ADDQ $64, R8
	ADDQ $64, R9
	DECQ BX
	JNZ  maclanes

	ADDQ $8, DX
	ADDQ $512, DI
	DECQ CX
	JNZ  macw

macdone:
	VZEROUPPER
	RET

// func gtMask64AVX2(x *float64, thr float64) uint64
//
// Bit i of the result is x[i] > thr (ordered greater-than: NaN lanes
// report false, matching the Go `>` operator). Walks the 16 quads from
// the top so each VMOVMSKPD nibble shifts into place with an immediate
// shift.
TEXT ·gtMask64AVX2(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	VBROADCASTSD thr+8(FP), Y0
	ADDQ $480, SI // last quad first
	XORQ AX, AX
	MOVQ $16, CX

gtloop:
	SHLQ $4, AX
	VMOVUPD (SI), Y1
	VCMPPD  $0x0e, Y0, Y1, Y2 // GT_OS: Y1 > Y0 per lane
	VMOVMSKPD Y2, DX
	ORQ  DX, AX
	SUBQ $32, SI
	DECQ CX
	JNZ  gtloop

	VZEROUPPER
	MOVQ AX, ret+16(FP)
	RET

// func convWin4AVX2(x, w *float64, off *int64, rowMask uint64, thr float64, masks *uint64)
//
// Fused four-filter window: per quad of lanes the four accumulators
// live in Y4-Y7 across every window row (ascending set bits of
// rowMask, VMULPD then VADDPD — never fused), then compare against the
// broadcast threshold and pack the VMOVMSKPD nibbles into the four
// mask words. Quads walk from the top so each nibble shifts into place
// with an immediate shift, as in gtMask64AVX2.
TEXT ·convWin4AVX2(SB), NOSPLIT, $0-48
	MOVQ x+0(FP), SI
	MOVQ w+8(FP), DX
	MOVQ off+16(FP), R8
	MOVQ rowMask+24(FP), R9
	VBROADCASTSD thr+32(FP), Y0
	ADDQ $480, SI // last quad first
	XORQ R10, R10
	XORQ R11, R11
	XORQ R12, R12
	XORQ R13, R13
	MOVQ $16, CX

cwquad:
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	MOVQ R9, BX
	TESTQ BX, BX
	JZ   cwcmp

cwrow:
	BSFQ BX, R14              // r = lowest set row
	MOVQ (R8)(R14*8), R15     // off[r], in elements
	VMOVUPD (SI)(R15*8), Y1   // this quad's four lanes of row r
	SHLQ $5, R14              // r*32 = weight-row byte offset
	VBROADCASTSD (DX)(R14*1), Y2
	VMULPD  Y1, Y2, Y2
	VADDPD  Y2, Y4, Y4
	VBROADCASTSD 8(DX)(R14*1), Y2
	VMULPD  Y1, Y2, Y2
	VADDPD  Y2, Y5, Y5
	VBROADCASTSD 16(DX)(R14*1), Y2
	VMULPD  Y1, Y2, Y2
	VADDPD  Y2, Y6, Y6
	VBROADCASTSD 24(DX)(R14*1), Y2
	VMULPD  Y1, Y2, Y2
	VADDPD  Y2, Y7, Y7
	LEAQ -1(BX), R14
	ANDQ R14, BX              // clear lowest set bit
	JNZ  cwrow

cwcmp:
	SHLQ $4, R10
	VCMPPD $0x0e, Y0, Y4, Y1 // GT_OS: acc > thr per lane
	VMOVMSKPD Y1, AX
	ORQ  AX, R10
	SHLQ $4, R11
	VCMPPD $0x0e, Y0, Y5, Y1
	VMOVMSKPD Y1, AX
	ORQ  AX, R11
	SHLQ $4, R12
	VCMPPD $0x0e, Y0, Y6, Y1
	VMOVMSKPD Y1, AX
	ORQ  AX, R12
	SHLQ $4, R13
	VCMPPD $0x0e, Y0, Y7, Y1
	VMOVMSKPD Y1, AX
	ORQ  AX, R13
	SUBQ $32, SI
	DECQ CX
	JNZ  cwquad

	VZEROUPPER
	MOVQ masks+40(FP), DI
	MOVQ R10, (DI)
	MOVQ R11, 8(DI)
	MOVQ R12, 16(DI)
	MOVQ R13, 24(DI)
	RET

// func addRowLanesAVX2(acc, row *float64, m int64, laneWord uint64)
//
// acc[lane*m+c] += row[c] for every set bit lane of laneWord. Each
// element is one VADDPD/VADDSD lane — a single IEEE add, identical to
// the scalar loop. m is walked 4/2/1 doubles at a time.
TEXT ·addRowLanesAVX2(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ row+8(FP), SI
	MOVQ m+16(FP), DX
	MOVQ laneWord+24(FP), BX
	MOVQ DX, R9
	SHLQ $3, R9 // byte stride per lane

arlane:
	BSFQ  BX, AX
	IMULQ R9, AX
	LEAQ  (DI)(AX*1), R8 // &acc[lane*m]
	MOVQ  SI, R10
	MOVQ  DX, CX

arq4:
	CMPQ CX, $4
	JLT  arq2
	VMOVUPD (R10), Y1
	VADDPD  (R8), Y1, Y1
	VMOVUPD Y1, (R8)
	ADDQ $32, R10
	ADDQ $32, R8
	SUBQ $4, CX
	JMP  arq4

arq2:
	CMPQ CX, $2
	JLT  arq1
	VMOVUPD (R10), X1
	VADDPD  (R8), X1, X1
	VMOVUPD X1, (R8)
	ADDQ $16, R10
	ADDQ $16, R8
	SUBQ $2, CX

arq1:
	TESTQ CX, CX
	JZ    arnext
	VMOVSD (R10), X1
	VADDSD (R8), X1, X1
	VMOVSD X1, (R8)

arnext:
	LEAQ -1(BX), AX
	ANDQ AX, BX
	JNZ  arlane

	VZEROUPPER
	RET
