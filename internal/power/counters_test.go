package power

import (
	"math"
	"testing"

	"sei/internal/obs"
)

// counterReport builds a report with the given hw counter totals.
func counterReport(mvm, sa, cols, active, orpool int64) obs.Report {
	return obs.Report{
		Name: "test",
		Counters: map[string]int64{
			obs.HWMVMOps:            mvm,
			obs.HWSAComparisons:     sa,
			obs.HWColumnActivations: cols,
			obs.HWActiveInputs:      active,
			obs.HWORPoolReductions:  orpool,
		},
	}
}

func TestCountsFromReportUniformColumns(t *testing.T) {
	// 10 block evals, 16 columns each, 50 active lines per eval.
	rep := counterReport(10, 160, 160, 500, 40)
	c, err := CountsFromReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if c.SAEvaluations != 160 {
		t.Errorf("SAEvaluations = %d, want 160", c.SAEvaluations)
	}
	if c.RowDrives != 500 {
		t.Errorf("RowDrives = %d, want 500", c.RowDrives)
	}
	// Exact with uniform 16-column blocks: 4 cells × 500 lines × 16.
	if want := int64(CellsPerWeight * 500 * 16); c.CellReads != want {
		t.Errorf("CellReads = %d, want %d", c.CellReads, want)
	}
	if c.Adds != 40 {
		t.Errorf("Adds = %d, want 40", c.Adds)
	}
	if c.BufferBytes != 0 || c.DRAMBytes != 0 {
		t.Errorf("buffer/DRAM = %d/%d, want 0 (not counter-derivable)", c.BufferBytes, c.DRAMBytes)
	}
}

// TestCountsFromReportBoundEvals pins that bounded-mode runs pay for
// their own skip logic: each sei_bound_evals event books two digital
// compares on the Adds counter, on top of the OR-pool reductions.
func TestCountsFromReportBoundEvals(t *testing.T) {
	rep := counterReport(10, 160, 160, 500, 40)
	rep.Counters[obs.SEIBoundEvals] = 25
	c, err := CountsFromReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(40 + 2*25); c.Adds != want {
		t.Errorf("Adds = %d, want %d (orpool + 2×bound evals)", c.Adds, want)
	}
}

// TestNoiseCountersDoNotAffectEnergy pins that sei_noise_draws is
// simulator accounting, not an energy event: read noise is a physical
// property of the analog read the crossbar already pays for, so two
// reports that differ only in sei_noise_* totals yield identical
// Counts and identical energy.
func TestNoiseCountersDoNotAffectEnergy(t *testing.T) {
	quiet := counterReport(10, 160, 160, 500, 40)
	noisy := counterReport(10, 160, 160, 500, 40)
	noisy.Counters[obs.SEINoiseDraws] = 123456
	cq, err := CountsFromReport(quiet)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := CountsFromReport(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if cq != cn {
		t.Errorf("noise draws changed Counts: %+v vs %+v", cq, cn)
	}
	lib := DefaultLibrary()
	bq, err := EnergyFromCounters(quiet, lib)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := EnergyFromCounters(noisy, lib)
	if err != nil {
		t.Fatal(err)
	}
	if bq != bn {
		t.Errorf("noise draws changed energy: %+v vs %+v", bq, bn)
	}
}

func TestCountsFromReportUninstrumented(t *testing.T) {
	if _, err := CountsFromReport(obs.Report{Name: "empty", Counters: map[string]int64{}}); err == nil {
		t.Fatal("want error for a report without hw counters")
	}
}

func TestEnergyFromCountersBreakdown(t *testing.T) {
	lib := DefaultLibrary()
	rep := counterReport(10, 160, 160, 500, 40)
	b, err := EnergyFromCounters(rep, lib)
	if err != nil {
		t.Fatal(err)
	}
	if want := 160 * lib.SAEnergyPJ; b.SA != want {
		t.Errorf("SA = %g, want %g", b.SA, want)
	}
	if want := 500 * lib.DriverEnergyPJ; b.Driver != want {
		t.Errorf("Driver = %g, want %g", b.Driver, want)
	}
	if want := float64(CellsPerWeight*500*16) * lib.CellReadEnergyPJ; b.RRAM != want {
		t.Errorf("RRAM = %g, want %g", b.RRAM, want)
	}
	if want := 40 * lib.AddEnergyPJ; b.Digital != want {
		t.Errorf("Digital = %g, want %g", b.Digital, want)
	}
	// SEI replaces the interfaces: no DAC/ADC events can come from the
	// counter stream.
	if b.DAC != 0 || b.ADC != 0 {
		t.Errorf("DAC/ADC = %g/%g, want 0", b.DAC, b.ADC)
	}
	if b.Total() <= 0 {
		t.Errorf("total = %g, want > 0", b.Total())
	}
}

func TestEnergyFromCountersRejectsBadLibrary(t *testing.T) {
	lib := DefaultLibrary()
	lib.SAEnergyPJ = -1
	if _, err := EnergyFromCounters(counterReport(1, 1, 1, 1, 1), lib); err == nil {
		t.Fatal("want validation error for non-physical library")
	}
}

func TestEnergyPerInferencePJ(t *testing.T) {
	lib := DefaultLibrary()
	rep := counterReport(10, 160, 160, 500, 40)
	whole, err := EnergyFromCounters(rep, lib)
	if err != nil {
		t.Fatal(err)
	}
	per, err := EnergyPerInferencePJ(rep, lib, 20)
	if err != nil {
		t.Fatal(err)
	}
	if want := whole.Total() / 20; math.Abs(per-want) > 1e-9 {
		t.Errorf("per-inference = %g, want %g", per, want)
	}
	if _, err := EnergyPerInferencePJ(rep, lib, 0); err == nil {
		t.Fatal("want error for zero images")
	}
}
