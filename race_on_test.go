//go:build race

package sei

// raceEnabled mirrors internal/seicore's test constant: sync.Pool is
// intentionally lossy under the race detector, so allocation-count
// assertions are skipped there.
const raceEnabled = true
