package seicore

import (
	"fmt"
	"math/rand"

	"sei/internal/obs"
	"sei/internal/rram"
	"sei/internal/tensor"
)

// MergedLayer models the ADC-based baseline structure (Fig. 2b): four
// crossbars per logical matrix (positive/negative × high/low 4-bit
// slice), each column digitized by an ADC and merged with digital
// shifters, adders and subtractors. Because the merge is digital and
// exact, the layer computes an exact matrix-vector product against the
// effective (device-perturbed) weights; tiling across crossbars does
// not change the arithmetic, only the interface counts (handled by
// package arch).
type MergedLayer struct {
	N, M int

	eff   *tensor.Tensor // [N, M] effective real weights
	model rram.DeviceModel
	// readNoise/cells: per-column read-noise RNG or per-cell draw
	// stream (see SEIConvLayer); at most one is non-nil. The DAC-driven
	// input stage carries analog values, so per-cell noise scales with
	// the driven input level (σ·x·w·g per cell).
	readNoise *rand.Rand
	cells     *noiseStream
	hw        *obs.HW     // hardware-event counters; nil = not instrumented
	skip      *obs.SkipHW // bounded-mode skip counters (stage 0 pool-crop skips)
}

// NewMergedLayer programs the matrix w [N,M] into the baseline
// structure under the given device model. rng drives programming
// variation and, when the model has read noise, per-evaluation noise.
func NewMergedLayer(w *tensor.Tensor, model rram.DeviceModel, rng *rand.Rand) (*MergedLayer, error) {
	eff, _, err := EffectiveSignedMatrix(w, model, rng)
	if err != nil {
		return nil, err
	}
	l := &MergedLayer{N: w.Dim(0), M: w.Dim(1), eff: eff, model: model}
	if model.ReadNoiseSigma > 0 {
		if model.ReadNoisePerCell {
			l.cells = newNoiseStream(int64(rng.Uint64()))
		} else {
			l.readNoise = rng
		}
	}
	return l, nil
}

// Eval computes the merged outputs for one input vector (real-valued
// for the DAC-driven input layer, 0/1 elsewhere). A nonlinear device
// I-V (DeviceModel.IVNonlinearity) distorts analog inputs through the
// full-swing-calibrated sinh transfer; 1-bit inputs (0 or full swing)
// are unaffected — the structural robustness the 1-bit data path buys.
func (l *MergedLayer) Eval(in []float64) []float64 {
	if len(in) != l.N {
		panic(fmt.Sprintf("seicore: MergedLayer input length %d, want %d", len(in), l.N))
	}
	if h := l.hw; h != nil {
		ones := 0
		for _, x := range in {
			if x != 0 {
				ones++
			}
		}
		h.MVM(1)
		h.ColumnActivations(int64(l.M))
		h.ActiveInputs(int64(ones))
	}
	if l.model.IVNonlinearity > 0 {
		f := l.model.TransferCalibrated()
		nv := make([]float64, len(in))
		for j, x := range in {
			nv[j] = f(x)
		}
		in = nv
	}
	out := tensor.MatVecT(l.eff, in)
	l.applyReadNoise(in, out, nil)
	return out
}

// applyReadNoise perturbs one evaluation's outputs with the model's
// read noise: per-cell draws over the active rows in ascending order
// (noise.go), or the original per-column multiplicative draws. g is
// the per-cell draw scratch (len ≥ M); nil lets the float path
// allocate one on demand.
func (l *MergedLayer) applyReadNoise(in, out, g []float64) {
	if l.cells != nil {
		if g == nil {
			g = make([]float64, l.M)
		}
		sigma := l.model.ReadNoiseSigma
		data := l.eff.Data()
		draws := 0
		for j, x := range in {
			if x == 0 {
				continue
			}
			l.cells.block(g[:l.M])
			draws += l.M
			row := data[j*l.M : (j+1)*l.M]
			for c, v := range row {
				out[c] += sigma * x * v * g[c]
			}
		}
		l.hw.NoiseDraws(int64(draws))
		return
	}
	if l.readNoise != nil {
		for k := range out {
			out[k] *= 1 + l.model.ReadNoiseSigma*l.readNoise.NormFloat64()
		}
		l.hw.NoiseDraws(int64(len(out)))
	}
}

// evalIdealInto is the allocation-free variant of Eval for the
// ideal-analog case (no I-V nonlinearity, no read noise — guaranteed
// by the fast-path dispatch): outputs are written into out (len M)
// with MatVecTInto, whose accumulation order is bit-identical to the
// MatVecT call inside Eval. Hardware counters are recorded exactly as
// Eval records them. Returns the active-input count for the bounded
// path's row accounting (0 when uninstrumented — only the bounded
// path, which requires instrumentation to be useful, reads it).
func (l *MergedLayer) evalIdealInto(in, out []float64) int {
	ones := 0
	if h := l.hw; h != nil {
		for _, x := range in {
			if x != 0 {
				ones++
			}
		}
		h.MVM(1)
		h.ColumnActivations(int64(l.M))
		h.ActiveInputs(int64(ones))
	}
	tensor.MatVecTInto(out, l.eff, in)
	return ones
}

// evalNoisyInto is the allocation-free variant of Eval for linear but
// non-ideal read-out (read noise and/or IR-free merged stages —
// guaranteed by the packed noisy dispatch, which excludes I-V
// nonlinearity): MatVecTInto produces the bit-identical ideal product,
// then applyReadNoise draws exactly the draws Eval draws, in the same
// order, from the caller's scratch g. Hardware counters are recorded
// exactly as Eval records them.
func (l *MergedLayer) evalNoisyInto(in, out, g []float64) {
	if h := l.hw; h != nil {
		ones := 0
		for _, x := range in {
			if x != 0 {
				ones++
			}
		}
		h.MVM(1)
		h.ColumnActivations(int64(l.M))
		h.ActiveInputs(int64(ones))
	}
	tensor.MatVecTInto(out, l.eff, in)
	l.applyReadNoise(in, out, g)
}

// EffectiveWeights exposes the programmed effective matrix for
// inspection and tests.
func (l *MergedLayer) EffectiveWeights() *tensor.Tensor { return l.eff }

// BlocksFor returns how many row blocks a logical matrix needs when
// each logical input occupies cellsPerInput physical rows and the
// crossbar is limited to maxRows physical rows.
func BlocksFor(n, cellsPerInput, maxRows int) int {
	if maxRows <= 0 || cellsPerInput <= 0 {
		panic(fmt.Sprintf("seicore: invalid split parameters cells=%d max=%d", cellsPerInput, maxRows))
	}
	weightsPerBlock := maxRows / cellsPerInput
	if weightsPerBlock == 0 {
		panic(fmt.Sprintf("seicore: %d cells per input exceed crossbar height %d", cellsPerInput, maxRows))
	}
	k := (n + weightsPerBlock - 1) / weightsPerBlock
	if k == 0 {
		k = 1
	}
	return k
}

// SplitOrder partitions the logical input indices, in the given order,
// into k contiguous blocks of near-equal size (the paper splits
// 1200×64 into three 400×64 crossbars — balanced, not greedy-filled).
func SplitOrder(order []int, k int) [][]int {
	n := len(order)
	if k <= 0 || k > n {
		panic(fmt.Sprintf("seicore: cannot split %d rows into %d blocks", n, k))
	}
	blocks := make([][]int, k)
	start := 0
	for b := 0; b < k; b++ {
		size := n / k
		if b < n%k {
			size++
		}
		blocks[b] = order[start : start+size]
		start += size
	}
	return blocks
}

// NaturalOrder returns the identity permutation 0..n−1.
func NaturalOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}
