package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"sei/internal/cliutil"
	"sei/internal/mnist"
)

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-demo", "-workers", "4"}, io.Discard); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-h"}, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: err = %v, want flag.ErrHelp", err)
	}
	if _, err := parseFlags([]string{"-nope"}, io.Discard); !errors.Is(err, cliutil.ErrUsage) {
		t.Fatalf("unknown flag: err = %v, want ErrUsage", err)
	}
	if _, err := parseFlags([]string{"-demo", "-workers", "-3"}, io.Discard); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := parseFlags(nil, io.Discard); err == nil {
		t.Fatal("empty registry (no -designs, no -demo) accepted")
	}
}

// TestServeSmokeSIGTERM is the end-to-end smoke test: start the
// service on an ephemeral port, predict against the demo classifier,
// verify labels match the offline classifier bit-for-bit, then SIGTERM
// the process and require a clean drain.
func TestServeSmokeSIGTERM(t *testing.T) {
	opt, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-demo", "-max-delay", "1ms", "-drain", "5s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	readyc := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(opt, io.Discard, func(addr string) { readyc <- addr })
	}()
	var addr string
	select {
	case addr = <-readyc:
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("service not ready in 30s")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Predict ten images and compare with the identically seeded
	// offline classifier.
	offline := buildDemo(opt.seed)
	data := mnist.Synthetic(10, 77)
	var req struct {
		Design string      `json:"design"`
		Images [][]float64 `json:"images"`
	}
	req.Design = "demo"
	for _, img := range data.Images {
		req.Images = append(req.Images, img.Data())
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []struct {
			Label int    `json:"label"`
			Error string `json:"error"`
		} `json:"results"`
	}
	err = json.NewDecoder(presp.Body).Decode(&out)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", presp.StatusCode)
	}
	if len(out.Results) != data.Len() {
		t.Fatalf("got %d results, want %d", len(out.Results), data.Len())
	}
	for i, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("image %d: %s", i, r.Error)
		}
		if want := offline.Predict(data.Images[i]); r.Label != want {
			t.Fatalf("image %d: served %d, offline %d", i, r.Label, want)
		}
	}

	// A malformed request must not kill the service.
	bresp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader([]byte(`{broken`)))
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed predict: status %d, want 400", bresp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("service did not drain within 15s of SIGTERM")
	}
}
