package serve

import (
	"errors"
	"testing"

	"sei/internal/nn"
)

// resolveLabel routes one unpinned or pinned request and returns the
// served classifier's constant label plus the generation number.
func resolveLabel(t *testing.T, reg *Registry, name string, pin int) (int, int) {
	t.Helper()
	c, gen, err := reg.Resolve(name, pin)
	if err != nil {
		t.Fatalf("resolve %q pin %d: %v", name, pin, err)
	}
	return int(c.(constClassifier)), gen
}

// TestRegistryRetainHistory pins the retained-generation semantics
// beyond the two-live default: with SetRetain(4), full-swap publishes
// keep the previous two generations live for pinned requests while
// unpinned traffic always lands on the newest.
func TestRegistryRetainHistory(t *testing.T) {
	reg := NewRegistry("", 0)
	reg.SetRetain(4)
	for i := 1; i <= 5; i++ {
		if gen := reg.Publish("d", constClassifier(i), 1); gen != i {
			t.Fatalf("publish %d: generation %d", i, gen)
		}
	}
	// retain 4 = routing pair + 2 history slots; full swaps occupy one
	// routing slot, so 3 generations stay live: the newest plus two
	// history entries, oldest evicted first.
	if got := reg.Lookup("d").Generations(); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("generations = %v, want [3 4 5]", got)
	}
	if label, gen := resolveLabel(t, reg, "d", 0); label != 5 || gen != 5 {
		t.Fatalf("unpinned served %d/gen %d, want newest 5", label, gen)
	}
	for _, pin := range []int{3, 4, 5} {
		if label, gen := resolveLabel(t, reg, "d", pin); label != pin || gen != pin {
			t.Fatalf("pin %d served %d/gen %d", pin, label, gen)
		}
	}
	if _, _, err := reg.Resolve("d", 2); !errors.Is(err, ErrUnknownGeneration) {
		t.Fatalf("evicted pin 2 err = %v, want ErrUnknownGeneration", err)
	}
}

// TestRegistryRetainCanaryRouting pins that history entries never
// receive unpinned traffic: during a canary the split is strictly
// between the two newest generations, and promotion keeps the
// previous stable pinnable when a history slot is free.
func TestRegistryRetainCanaryRouting(t *testing.T) {
	reg := NewRegistry("", 0)
	reg.SetRetain(4)
	reg.Publish("d", constClassifier(1), 1)
	reg.Publish("d", constClassifier(2), 1)
	reg.Publish("d", constClassifier(3), 0.5)
	if got := reg.Lookup("d").Generations(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("generations = %v, want [1 2 3]", got)
	}
	seen := map[int]int{}
	for i := 0; i < 20; i++ {
		_, gen := resolveLabel(t, reg, "d", 0)
		seen[gen]++
	}
	if seen[1] != 0 || seen[2] != 10 || seen[3] != 10 {
		t.Fatalf("unpinned split %v, want gens 2 and 3 at 10 each, history untouched", seen)
	}
	if err := reg.SetCanary("d", 1); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if got := reg.Lookup("d").Generations(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("promoted generations = %v, want [1 2 3] (stable drops to history)", got)
	}
	if label, gen := resolveLabel(t, reg, "d", 0); label != 3 || gen != 3 {
		t.Fatalf("post-promote unpinned served %d/gen %d, want 3", label, gen)
	}
	if label, _ := resolveLabel(t, reg, "d", 2); label != 2 {
		t.Fatalf("post-promote pin 2 served %d", label)
	}
}

// TestRegistryRetainDefaultIsTwoLive is the legacy-behavior
// regression: without SetRetain, full swaps retire the previous
// generation entirely and promotion retires the canary's partner —
// exactly the original two-live semantics.
func TestRegistryRetainDefaultIsTwoLive(t *testing.T) {
	reg := NewRegistry("", 0)
	reg.Publish("d", constClassifier(1), 1)
	reg.Publish("d", constClassifier(2), 1)
	if got := reg.Lookup("d").Generations(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("generations = %v, want [2]", got)
	}
	if _, _, err := reg.Resolve("d", 1); !errors.Is(err, ErrUnknownGeneration) {
		t.Fatalf("retired pin err = %v, want ErrUnknownGeneration", err)
	}
	reg.Publish("d", constClassifier(3), 0.5)
	if err := reg.SetCanary("d", 1); err != nil {
		t.Fatal(err)
	}
	if got := reg.Lookup("d").Generations(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("promoted generations = %v, want [3]", got)
	}
}

// TestRegistryRetainUnregister pins Unregister against retained
// history: removal drops every live generation at once, and a
// disk-backed design reappears as a fresh generation 1 — not as a
// continuation of the unregistered lineage.
func TestRegistryRetainUnregister(t *testing.T) {
	dir := t.TempDir()
	touchDesignFile(t, dir, "d")
	reg := NewRegistry(dir, 0)
	reg.SetRetain(3)
	reg.loadFn = func(string, int64) (nn.Classifier, error) { return constClassifier(99), nil }
	for i := 1; i <= 3; i++ {
		reg.Publish("d", constClassifier(i), 1)
	}
	if got := reg.Lookup("d").Generations(); len(got) != 2 {
		t.Fatalf("generations = %v, want 2 live before unregister", got)
	}
	if !reg.Unregister("d") {
		t.Fatal("unregister reported absent")
	}
	if reg.Lookup("d") != nil {
		t.Fatal("design still live after unregister")
	}
	// The snapshot file resurrects the name as generation 1.
	if label, gen := resolveLabel(t, reg, "d", 0); label != 99 || gen != 1 {
		t.Fatalf("post-unregister cold load served %d/gen %d, want 99/gen 1", label, gen)
	}
	if _, _, err := reg.Resolve("d", 3); !errors.Is(err, ErrUnknownGeneration) {
		t.Fatalf("old lineage pin err = %v, want ErrUnknownGeneration", err)
	}
}

// TestRegistryRetainReloadChain pins Reload against a raised retain
// cap: successive full-swap reloads accumulate pinnable history, each
// pinned generation keeps serving the classifier it was published
// with, and lowering the cap trims on the next publish.
func TestRegistryRetainReloadChain(t *testing.T) {
	dir := t.TempDir()
	touchDesignFile(t, dir, "d")
	reg := NewRegistry(dir, 0)
	reg.SetRetain(3)
	calls := 0
	reg.loadFn = func(string, int64) (nn.Classifier, error) {
		calls++
		return constClassifier(calls), nil
	}
	for want := 1; want <= 3; want++ {
		gen, err := reg.Reload("d", 1)
		if err != nil {
			t.Fatalf("reload %d: %v", want, err)
		}
		if gen != want {
			t.Fatalf("reload %d: generation %d", want, gen)
		}
	}
	if got := reg.Lookup("d").Generations(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("generations = %v, want [2 3]", got)
	}
	for _, pin := range []int{2, 3} {
		if label, _ := resolveLabel(t, reg, "d", pin); label != pin {
			t.Fatalf("pin %d serves classifier %d; reload broke pinning", pin, label)
		}
	}
	reg.SetRetain(2)
	if gen, err := reg.Reload("d", 1); err != nil || gen != 4 {
		t.Fatalf("reload after cap lower: gen %d err %v", gen, err)
	}
	if got := reg.Lookup("d").Generations(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("generations = %v, want [4] after two-live trim", got)
	}
}
