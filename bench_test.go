package sei

// One benchmark per table and figure of the paper (see DESIGN.md §4)
// plus ablation benches for the design choices DESIGN.md calls out.
// `go test -bench=. -benchmem` regenerates every experiment at the
// quick sizing and reports the headline quantities as custom metrics,
// so the bench log doubles as a compact reproduction record.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"sei/internal/arch"
	"sei/internal/experiments"
	"sei/internal/hdl"
	"sei/internal/homog"
	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/power"
	"sei/internal/quant"
	"sei/internal/rram"
	"sei/internal/seicore"
	"sei/internal/snn"
	"sei/internal/tensor"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

// benchContext shares one trained/quantized Network 2 across benches
// (and the allocation-guard tests that ride along with them).
func benchContext(b testing.TB) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.QuickConfig())
	})
	return benchCtx
}

// BenchmarkFigure1 regenerates the power/area breakdown of Fig. 1.
func BenchmarkFigure1(b *testing.B) {
	c := benchContext(b)
	var iface float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(c, 2)
		if err != nil {
			b.Fatal(err)
		}
		iface = res.InterfacePowerFraction
	}
	b.ReportMetric(100*iface, "interface_%")
}

// BenchmarkTable1 regenerates the intermediate-data distribution.
func BenchmarkTable1(b *testing.B) {
	c := benchContext(b)
	var lowest float64
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(c, 2)
		rows := res.Networks[2]
		lowest = rows[len(rows)-1].Fractions[0]
	}
	b.ReportMetric(100*lowest, "near_zero_%")
}

// BenchmarkTable2 regenerates the setup/complexity table.
func BenchmarkTable2(b *testing.B) {
	c := benchContext(b)
	var gops float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(c)
		gops = rows[0].OpsGOPs
	}
	b.ReportMetric(gops*1000, "net1_MOPs")
}

// BenchmarkTable3 regenerates the quantization error table.
func BenchmarkTable3(b *testing.B) {
	c := benchContext(b)
	var after float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(c, 2)
		after = rows[0].AfterQuantization
	}
	b.ReportMetric(100*after, "quant_err_%")
}

// BenchmarkTable4 regenerates the splitting study (random vs
// homogenized vs dynamic threshold) on Network 2 with a small crossbar
// that forces the conv stage to split.
func BenchmarkTable4(b *testing.B) {
	c := benchContext(b)
	var dyn float64
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(c, 2, []int{64})
		dyn = res.Columns[0].DynamicThreshold
	}
	b.ReportMetric(100*dyn, "dyn_err_%")
}

// BenchmarkTable5 regenerates the energy/area comparison of the three
// structures.
func BenchmarkTable5(b *testing.B) {
	c := benchContext(b)
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(c, []experiments.Table5Point{{NetworkID: 2, MaxCrossbar: 512}})
		if err != nil {
			b.Fatal(err)
		}
		saving = res.Rows[2].EnergySaving
	}
	b.ReportMetric(100*saving, "sei_saving_%")
}

// BenchmarkHomogenization regenerates the Section-4.3 distance study.
func BenchmarkHomogenization(b *testing.B) {
	c := benchContext(b)
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows := experiments.HomogenizationStudy(c, 2, 64)
		reduction = rows[0].GAReduction
	}
	b.ReportMetric(100*reduction, "distance_reduction_%")
}

// BenchmarkEfficiency regenerates the Section-5.3 GOPs/J comparison.
func BenchmarkEfficiency(b *testing.B) {
	c := benchContext(b)
	var vsFPGA float64
	for i := 0; i < b.N; i++ {
		rows := experiments.EfficiencyComparison(c, 2)
		vsFPGA = rows[2].VsFPGA
	}
	b.ReportMetric(vsFPGA, "vs_fpga_x")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationDeviceBits sweeps RRAM precision 2–6 bits and
// reports the 4-bit (paper default) hardware error.
func BenchmarkAblationDeviceBits(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	test := c.Test.Subset(100)
	var err4 float64
	for i := 0; i < b.N; i++ {
		for bits := 2; bits <= 6; bits++ {
			model := rram.IdealDeviceModel(bits)
			model.ProgramSigma = 0.02
			design, err := seicore.BuildOneBitADC(q, model, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			e := nn.ClassifierErrorRate(design, test)
			if bits == 4 {
				err4 = e
			}
		}
	}
	b.ReportMetric(100*err4, "err4bit_%")
}

// BenchmarkAblationVariationSigma sweeps programming variation and
// reports the error at the default σ = 0.02.
func BenchmarkAblationVariationSigma(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	test := c.Test.Subset(100)
	var errDefault float64
	for i := 0; i < b.N; i++ {
		for _, sigma := range []float64{0, 0.02, 0.05, 0.1, 0.2} {
			model := rram.DefaultDeviceModel()
			model.ProgramSigma = sigma
			design, err := seicore.BuildOneBitADC(q, model, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			e := nn.ClassifierErrorRate(design, test)
			if sigma == 0.02 {
				errDefault = e
			}
		}
	}
	b.ReportMetric(100*errDefault, "err_sigma02_%")
}

// BenchmarkAblationCrossbarSize sweeps the crossbar limit and reports
// the SEI energy ratio 256-vs-512 (Table 5's Network-1 pattern).
func BenchmarkAblationCrossbarSize(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	geoms, err := arch.GeometryOf(q)
	if err != nil {
		b.Fatal(err)
	}
	lib := power.DefaultLibrary()
	var ratio float64
	for i := 0; i < b.N; i++ {
		var e512, e256 float64
		for _, size := range []int{512, 256, 128, 64} {
			cfg := arch.DefaultConfig(seicore.StructSEI)
			cfg.MaxCrossbar = size
			m, err := arch.Map(geoms, cfg)
			if err != nil {
				b.Fatal(err)
			}
			_, e := m.Energy(lib)
			switch size {
			case 512:
				e512 = e.Total()
			case 256:
				e256 = e.Total()
			}
		}
		ratio = e256 / e512
	}
	b.ReportMetric(ratio, "energy_256v512_x")
}

// BenchmarkAblationHomogMethod compares GA vs greedy vs random
// ordering quality on one split matrix.
func BenchmarkAblationHomogMethod(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	w := q.ConvMatrix(1)
	var gaOverGreedy float64
	for i := 0; i < b.N; i++ {
		const k = 3
		greedy := homog.Distance(w, homog.GreedySerpentine(w, k), k)
		cfg := homog.DefaultGAConfig()
		cfg.Generations = 120
		res, err := homog.Homogenize(w, k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if greedy > 0 {
			gaOverGreedy = res.Distance / greedy
		}
	}
	b.ReportMetric(gaOverGreedy, "ga_over_greedy_x")
}

// BenchmarkAblationAnnealVsGA compares simulated annealing against the
// paper's genetic algorithm on the same objective.
func BenchmarkAblationAnnealVsGA(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	w := q.ConvMatrix(1)
	var ratio float64
	for i := 0; i < b.N; i++ {
		const k = 3
		ga, err := homog.Homogenize(w, k, homog.DefaultGAConfig())
		if err != nil {
			b.Fatal(err)
		}
		sa, err := homog.Anneal(w, k, homog.DefaultSAConfig())
		if err != nil {
			b.Fatal(err)
		}
		if ga.Distance > 0 {
			ratio = sa.Distance / ga.Distance
		}
	}
	b.ReportMetric(ratio, "sa_over_ga_x")
}

// BenchmarkAblationDynamicThreshold measures the error delta of the
// dynamic threshold vs the static split on a forced split.
func BenchmarkAblationDynamicThreshold(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	test := c.Test.Subset(100)
	var deltaPP float64
	for i := 0; i < b.N; i++ {
		build := func(dynamic bool) float64 {
			cfg := seicore.DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 64
			cfg.DynamicThreshold = dynamic
			cfg.CalibImages = 25
			var train *mnist.Dataset
			if dynamic {
				train = c.Train
			}
			d, err := seicore.BuildSEI(q, train, cfg, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			return nn.ClassifierErrorRate(d, test)
		}
		deltaPP = 100 * (build(false) - build(true))
	}
	b.ReportMetric(deltaPP, "dyn_gain_pp")
}

// BenchmarkAblationUnipolarMode compares the Section-4.2 unipolar
// linear-transform realization against the bipolar default.
func BenchmarkAblationUnipolarMode(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	test := c.Test.Subset(100)
	var uniErr float64
	for i := 0; i < b.N; i++ {
		cfg := seicore.DefaultSEIBuildConfig()
		cfg.Layer.Mode = seicore.ModeUnipolarDynamic
		cfg.DynamicThreshold = false
		d, err := seicore.BuildSEI(q, nil, cfg, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		uniErr = nn.ClassifierErrorRate(d, test)
	}
	b.ReportMetric(100*uniErr, "unipolar_err_%")
}

// BenchmarkVGGScale regenerates the Section-2.3 VGG-19 motivation
// numbers and the cost model at that scale.
func BenchmarkVGGScale(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.VGGAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		saving = res.Saving
	}
	b.ReportMetric(100*saving, "vgg_saving_%")
}

// BenchmarkTimingStudy regenerates the Section-5.3 buffer/time
// trade-off rows.
func BenchmarkTimingStudy(b *testing.B) {
	c := benchContext(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TimingStudy(c, 2, 8)
		if err != nil {
			b.Fatal(err)
		}
		// SEI: latency at 1 replica over latency at 8.
		speedup = rows[4].LatencyUS / rows[5].LatencyUS
	}
	b.ReportMetric(speedup, "replica8_speedup_x")
}

// BenchmarkProgramVerify measures the one-time program-and-verify
// write cost of a 128×128 array under default variation.
func BenchmarkProgramVerify(b *testing.B) {
	model := rram.DefaultDeviceModel()
	target := tensor.New(128, 128)
	rng := rand.New(rand.NewSource(1))
	for i := range target.Data() {
		target.Data()[i] = rng.Float64()
	}
	var pulses float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb, err := rram.NewCrossbar(128, 128, model)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := cb.ProgramVerify(target, rram.DefaultWriteConfig(), rng)
		if err != nil {
			b.Fatal(err)
		}
		pulses = stats.MeanPulses()
	}
	b.ReportMetric(pulses, "pulses/cell")
}

// BenchmarkHDLExport measures golden-RTL generation for Network 2.
func BenchmarkHDLExport(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	var bytesOut int
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := hdl.Export(q, &buf); err != nil {
			b.Fatal(err)
		}
		bytesOut = buf.Len()
	}
	b.ReportMetric(float64(bytesOut), "rtl_bytes")
}

// BenchmarkSpikingInference measures one 8-timestep rate-coded
// classification on the digital evaluator.
func BenchmarkSpikingInference(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	img := c.Test.Images[0]
	enc := snn.NewEncoder(1)
	cfg := snn.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snn.Classify(q, q.Digital(), img, cfg, enc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot kernels ---

// BenchmarkCrossbarMVM measures one 512×512 analog read.
func BenchmarkCrossbarMVM(b *testing.B) {
	model := rram.DefaultDeviceModel()
	cb, err := rram.NewCrossbar(512, 512, model)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	target := tensor.New(512, 512)
	for i := range target.Data() {
		target.Data()[i] = rng.Float64()
	}
	if err := cb.Program(target, rng); err != nil {
		b.Fatal(err)
	}
	v := make([]float64, 512)
	for i := range v {
		if rng.Float64() < 0.5 {
			v[i] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cb.MVM(v, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvForward measures one Network-2 forward pass.
func BenchmarkConvForward(b *testing.B) {
	net := nn.NewTableNetwork(2, 1)
	img := mnist.Synthetic(1, 1).Images[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(img)
	}
}

// BenchmarkQuantizedForward measures one binarized forward pass.
func BenchmarkQuantizedForward(b *testing.B) {
	net := nn.NewTableNetwork(2, 1)
	q, err := quant.Extract(net, []int{1, 28, 28})
	if err != nil {
		b.Fatal(err)
	}
	q.Thresholds = []float64{0.02, 0.02}
	img := mnist.Synthetic(1, 1).Images[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Predict(img)
	}
}

// BenchmarkSEIPredict measures one SEI hardware classification on the
// default dispatch (the bit-packed fast path for the ideal-analog
// default device). allocs/op must be 0 — the zero-allocation contract
// of the fast path; BenchmarkSEIPredictFloat in bench_predict_test.go
// is the float-path baseline it is compared against in bench-reports/history/BENCH_PR4.json.
func BenchmarkSEIPredict(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	cfg := seicore.DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := seicore.BuildSEI(q, nil, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	img := c.Test.Images[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Predict(img)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

// BenchmarkSEIPredictInstrumented is BenchmarkSEIPredict with a live
// recorder attached: the delta between the two is the enabled-recorder
// cost per classification. BenchmarkSEIPredict itself (nil recorder)
// doubles as the disabled-overhead guard — the hot path pays one nil
// check per hardware event.
func BenchmarkSEIPredictInstrumented(b *testing.B) {
	c := benchContext(b)
	q := c.QuantizedCalibrated(2)
	cfg := seicore.DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := seicore.BuildSEI(q, nil, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rec := obs.New()
	d.Instrument(rec)
	img := c.Test.Images[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Predict(img)
	}
	b.StopTimer()
	if rec.CounterValues()[obs.HWMVMOps] == 0 {
		b.Fatal("instrumented run recorded no MVM ops")
	}
}

// BenchmarkGADistance measures one Equ.-10 evaluation on a
// Network-1-sized FC matrix.
func BenchmarkGADistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.New(1024, 10)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64()
	}
	order := homog.RandomOrder(1024, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		homog.Distance(w, order, 8)
	}
}

// BenchmarkTrainingEpoch measures one epoch of Network-2 SGD on 100
// samples.
func BenchmarkTrainingEpoch(b *testing.B) {
	data := mnist.Synthetic(100, 1)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := nn.NewTableNetwork(2, 1)
		b.StartTimer()
		nn.Train(net, data, cfg)
	}
}

// TestBenchWorkloadSizing documents the quick-config workload the
// bench suite runs at.
func TestBenchWorkloadSizing(t *testing.T) {
	cfg := experiments.QuickConfig()
	if cfg.TrainSamples != 800 || cfg.TestSamples != 200 {
		t.Fatalf("quick workload changed: %d/%d — update bench docs", cfg.TrainSamples, cfg.TestSamples)
	}
}
