package power

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The Library marshals to flat JSON so users can substitute their own
// component constants (a different ADC paper, another technology node)
// without recompiling. Zero-valued fields in the file inherit the
// defaults, so a partial override like {"ADCEnergyPJ": 450} is enough.

// libraryJSON mirrors Library with explicit tags.
type libraryJSON struct {
	ADCEnergyPJ           float64 `json:"adc_energy_pj,omitempty"`
	ADCAreaUM2            float64 `json:"adc_area_um2,omitempty"`
	DACEnergyPJ           float64 `json:"dac_energy_pj,omitempty"`
	DACAreaUM2            float64 `json:"dac_area_um2,omitempty"`
	SAEnergyPJ            float64 `json:"sa_energy_pj,omitempty"`
	SAAreaUM2             float64 `json:"sa_area_um2,omitempty"`
	CellReadEnergyPJ      float64 `json:"cell_read_energy_pj,omitempty"`
	CellAreaUM2           float64 `json:"cell_area_um2,omitempty"`
	DriverEnergyPJ        float64 `json:"driver_energy_pj,omitempty"`
	DriverAreaUM2         float64 `json:"driver_area_um2,omitempty"`
	AddEnergyPJ           float64 `json:"add_energy_pj,omitempty"`
	ShiftEnergyPJ         float64 `json:"shift_energy_pj,omitempty"`
	SubEnergyPJ           float64 `json:"sub_energy_pj,omitempty"`
	PopcountEnergyPJ      float64 `json:"popcount_energy_pj,omitempty"`
	DigitalBlockAreaUM2   float64 `json:"digital_block_area_um2,omitempty"`
	BufferEnergyPJPerByte float64 `json:"buffer_energy_pj_per_byte,omitempty"`
	BufferAreaUM2PerByte  float64 `json:"buffer_area_um2_per_byte,omitempty"`
	DRAMEnergyPJPerByte   float64 `json:"dram_energy_pj_per_byte,omitempty"`
}

func toJSON(l Library) libraryJSON {
	return libraryJSON(l)
}

func fromJSON(j libraryJSON) Library {
	return Library(j)
}

// ReadLibrary decodes a JSON component library, filling unspecified
// fields from DefaultLibrary and validating the result.
func ReadLibrary(r io.Reader) (Library, error) {
	var j libraryJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Library{}, fmt.Errorf("power: decoding library: %w", err)
	}
	lib := fromJSON(j)
	def := DefaultLibrary()
	fill := func(dst *float64, d float64) {
		if *dst == 0 {
			*dst = d
		}
	}
	fill(&lib.ADCEnergyPJ, def.ADCEnergyPJ)
	fill(&lib.ADCAreaUM2, def.ADCAreaUM2)
	fill(&lib.DACEnergyPJ, def.DACEnergyPJ)
	fill(&lib.DACAreaUM2, def.DACAreaUM2)
	fill(&lib.SAEnergyPJ, def.SAEnergyPJ)
	fill(&lib.SAAreaUM2, def.SAAreaUM2)
	fill(&lib.CellReadEnergyPJ, def.CellReadEnergyPJ)
	fill(&lib.CellAreaUM2, def.CellAreaUM2)
	fill(&lib.DriverEnergyPJ, def.DriverEnergyPJ)
	fill(&lib.DriverAreaUM2, def.DriverAreaUM2)
	fill(&lib.AddEnergyPJ, def.AddEnergyPJ)
	fill(&lib.ShiftEnergyPJ, def.ShiftEnergyPJ)
	fill(&lib.SubEnergyPJ, def.SubEnergyPJ)
	fill(&lib.PopcountEnergyPJ, def.PopcountEnergyPJ)
	fill(&lib.DigitalBlockAreaUM2, def.DigitalBlockAreaUM2)
	fill(&lib.BufferEnergyPJPerByte, def.BufferEnergyPJPerByte)
	fill(&lib.BufferAreaUM2PerByte, def.BufferAreaUM2PerByte)
	fill(&lib.DRAMEnergyPJPerByte, def.DRAMEnergyPJPerByte)
	if err := lib.Validate(); err != nil {
		return Library{}, err
	}
	return lib, nil
}

// LoadLibraryFile reads a library from a JSON file.
func LoadLibraryFile(path string) (Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return Library{}, err
	}
	defer f.Close()
	return ReadLibrary(f)
}

// WriteLibrary encodes the library as indented JSON (the template a
// user would edit).
func WriteLibrary(w io.Writer, l Library) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSON(l))
}
