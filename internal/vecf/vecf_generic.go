//go:build !amd64

package vecf

func mulAccLanes(acc, x []float64, w []float64) { mulAccLanesGeneric(acc, x, w) }

func gtMask64(x []float64, thr float64) uint64 { return gtMask64Generic(x, thr) }

func convWin4(x, w []float64, off []int64, rowMask uint64, thr float64, masks *[4]uint64) {
	convWin4Generic(x, w, off, rowMask, thr, masks)
}

func addRowLanes(acc, row []float64, laneWord uint64) {
	addRowLanesGeneric(acc, row, laneWord)
}
