// Package bitvec implements uint64-word-packed binary vectors: the
// in-memory form of the paper's 1-bit intermediate data. After
// quantization every inter-layer activation is 0 or 1, so the crossbar
// MVM degenerates to summing the effective-weight rows whose input bit
// is set and max pooling degenerates to OR — both operations this
// package supports directly with word-parallel kernels (popcount,
// word-wise OR, ordered set-bit iteration, bit-range blits).
//
// A Vec is a fixed-capacity scratch object: Reset re-sizes and clears
// it without allocating when the new length fits the existing word
// buffer, which is what keeps the SEI inference fast path
// allocation-free in steady state.
package bitvec

import "math/bits"

const wordBits = 64

// Vec is a packed vector of n bits. The zero value is an empty vector;
// grow it with Reset.
type Vec struct {
	n int
	w []uint64
}

// New returns a zeroed vector of n bits.
func New(n int) *Vec {
	v := &Vec{}
	v.Reset(n)
	return v
}

// wordsFor returns how many uint64 words hold n bits.
func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Len returns the vector's length in bits.
func (v *Vec) Len() int { return v.n }

// Words exposes the backing words (ceil(Len/64) of them; bits past Len
// in the last word are zero). Mutating them mutates the vector.
func (v *Vec) Words() []uint64 { return v.w }

// Reset re-sizes the vector to n bits and clears every bit. The word
// buffer is reused when large enough, so steady-state Reset does not
// allocate.
func (v *Vec) Reset(n int) {
	if n < 0 {
		n = 0
	}
	nw := wordsFor(n)
	if cap(v.w) < nw {
		v.w = make([]uint64, nw)
	} else {
		v.w = v.w[:nw]
		for i := range v.w {
			v.w[i] = 0
		}
	}
	v.n = n
}

// Set sets bit i.
func (v *Vec) Set(i int) { v.w[i>>6] |= 1 << (uint(i) & 63) }

// Unset clears bit i.
func (v *Vec) Unset(i int) { v.w[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (v *Vec) Get(i int) bool { return v.w[i>>6]&(1<<(uint(i)&63)) != 0 }

// OnesCount returns the number of set bits (popcount).
func (v *Vec) OnesCount() int {
	c := 0
	for _, w := range v.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the smallest set bit index ≥ i, or -1 when no set
// bit remains. Iterating `for i := v.NextSet(0); i >= 0; i =
// v.NextSet(i+1)` visits every set bit in ascending order.
func (v *Vec) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i >> 6
	w := v.w[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.w); wi++ {
		if v.w[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(v.w[wi])
		}
	}
	return -1
}

// Or folds o into v word-wise (v |= o) — the OR-reduce of 1-bit max
// pooling. The lengths must match.
func (v *Vec) Or(o *Vec) {
	if v.n != o.n {
		panic("bitvec: Or length mismatch")
	}
	for i, w := range o.w {
		v.w[i] |= w
	}
}

// SetFloats re-sizes v to len(xs) and packs xs into it: bit i is set
// iff xs[i] != 0 — the quantizer's "active input" predicate.
func (v *Vec) SetFloats(xs []float64) {
	v.Reset(len(xs))
	for i, x := range xs {
		if x != 0 {
			v.w[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// SetAbove re-sizes v to len(xs) and packs the binarization of xs at
// threshold t: bit i is set iff xs[i] > t — Algorithm 1's candidate
// predicate in packed form, used by the incremental threshold-search
// engine to seed each sample's activation bitmap.
func (v *Vec) SetAbove(xs []float64, t float64) {
	v.Reset(len(xs))
	for i, x := range xs {
		if x > t {
			v.w[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// CopyRange copies n bits from src starting at srcOff into dst
// starting at dstOff, overwriting the destination range. It is the
// im2col primitive of the fast path: a receptive-field window is a
// sequence of kw-bit row segments blitted out of the packed activation
// map. src and dst must not alias overlapping ranges.
func CopyRange(dst *Vec, dstOff int, src *Vec, srcOff, n int) {
	if n < 0 || srcOff < 0 || dstOff < 0 || srcOff+n > src.n || dstOff+n > dst.n {
		panic("bitvec: CopyRange out of bounds")
	}
	for n > 0 {
		sb := uint(srcOff) & 63
		chunk := wordBits - int(sb)
		if chunk > n {
			chunk = n
		}
		w := src.w[srcOff>>6] >> sb
		if chunk < wordBits {
			w &= 1<<uint(chunk) - 1
		}
		writeBits(dst, dstOff, w, chunk)
		srcOff += chunk
		dstOff += chunk
		n -= chunk
	}
}

// writeBits overwrites n ≤ 64 bits of dst at off with the low n bits
// of w.
func writeBits(dst *Vec, off int, w uint64, n int) {
	di := off >> 6
	db := uint(off) & 63
	space := wordBits - int(db)
	mask := ^uint64(0)
	if n < wordBits {
		mask = 1<<uint(n) - 1
	}
	if n <= space {
		dst.w[di] = dst.w[di]&^(mask<<db) | w<<db
		return
	}
	low := uint64(1)<<uint(space) - 1
	dst.w[di] = dst.w[di]&^(low<<db) | (w&low)<<db
	hiN := n - space
	hiMask := uint64(1)<<uint(hiN) - 1
	dst.w[di+1] = dst.w[di+1]&^hiMask | w>>uint(space)
}
