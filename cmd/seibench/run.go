package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"time"

	"sei/internal/benchparse"
	"sei/internal/load"
	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/power"
	"sei/internal/quant"
	"sei/internal/seicore"
	"sei/internal/serve"
)

// runConfig sizes one `seibench run`.
type runConfig struct {
	Quick    bool
	Dir      string
	Seed     int64
	Rate     float64 // serve suite offered load (0 = mode default)
	Requests int     // serve suite request count (0 = mode default)
	Suites   map[string]bool
}

// allSuites is every suite `seibench run` knows, in execution order.
var allSuites = []string{"inference", "search", "serve", "energy", "noisy"}

// benchPattern maps the requested suites onto a -bench regex; the
// inference and search suites share one `go test` invocation (and thus
// one trained/calibrated bench context).
func benchPattern(suites map[string]bool) string {
	var names []string
	if suites["inference"] {
		names = append(names, "BenchmarkSEIPredict", "BenchmarkSEIPredictBatchSliced")
	}
	if suites["noisy"] {
		names = append(names, "BenchmarkSEIPredictNoisy")
	}
	if suites["search"] {
		names = append(names, "BenchmarkSearchThresholds")
	}
	if len(names) == 0 {
		return ""
	}
	pat := "^("
	for i, n := range names {
		if i > 0 {
			pat += "|"
		}
		pat += n
	}
	return pat + ")$"
}

// execOutput runs one command in the current directory and returns its
// combined output.
func execOutput(name string, args ...string) (string, error) {
	var buf bytes.Buffer
	cmd := exec.Command(name, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

// runBenchSuite shells out to `go test -bench` for the inference and
// search suites — the benchmarks stay the single source of truth for
// kernel timing, and seibench only parses what they print. Quick mode
// runs each benchmark once (-benchtime=1x); the dominant cost either
// way is the shared bench context (training + calibrating Network 2).
func runBenchSuite(cfg runConfig, stderr io.Writer) (*benchparse.Report, error) {
	pattern := benchPattern(cfg.Suites)
	if pattern == "" {
		return &benchparse.Report{}, nil
	}
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem"}
	if cfg.Quick {
		// 100ms per benchmark instead of the default 1s: enough
		// iterations for the fast kernels to average out scheduler
		// noise (a single -benchtime=1x sample can swing well past any
		// sane gate tolerance) while the slow calibration search still
		// completes in one iteration.
		args = append(args, "-benchtime", "100ms")
	}
	args = append(args, ".")
	fmt.Fprintln(stderr, "seibench: go", args)
	out, err := execOutput("go", args...)
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %w\n%s", err, out)
	}
	return benchparse.Parse(strings.NewReader(out))
}

// pipeline is the shared in-process fixture for the serve and energy
// suites: a trained, calibrated, SEI-built Network 2 plus its test
// split. Deliberately smaller than the go-test bench context — these
// suites measure the serving stack and the energy accounting, not
// model quality.
type pipeline struct {
	design *seicore.SEIDesign
	q      *quant.QuantizedNet
	test   *mnist.Dataset
}

// buildPipeline trains and quantizes the fixture. Sizes follow the
// serve package's test fixture; quick mode halves the training set.
func buildPipeline(cfg runConfig, stderr io.Writer) (*pipeline, error) {
	nTrain, epochs := 600, 2
	if cfg.Quick {
		nTrain, epochs = 400, 1
	}
	fmt.Fprintf(stderr, "seibench: building pipeline fixture (train=%d, epochs=%d)\n", nTrain, epochs)
	train, test := mnist.SyntheticSplit(nTrain, 2*nn.SlicedGroupSize, cfg.Seed)
	net := nn.NewTableNetwork(2, cfg.Seed)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Seed = cfg.Seed
	nn.Train(net, train, tcfg)
	scfg := quant.DefaultSearchConfig()
	scfg.Samples = 100
	q, _, err := quant.QuantizeNetwork(net, train, []int{1, mnist.Side, mnist.Side}, scfg)
	if err != nil {
		return nil, fmt.Errorf("quantize: %w", err)
	}
	bcfg := seicore.DefaultSEIBuildConfig()
	bcfg.DynamicThreshold = false
	d, err := seicore.BuildSEI(q, nil, bcfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("build SEI: %w", err)
	}
	return &pipeline{design: d, q: q, test: test}, nil
}

// runNoisySuite measures the packed non-ideal path (DESIGN.md §17) on
// a Table-5-style read-noise variant of the fixture (per-column sigma
// 0.05): the float path and the packed path evaluate the same noisy
// design — bit-identical by contract, re-checked here label for label
// — and the wall-clock ratio is the trend-gated Monte Carlo speedup.
// The timed passes run uninstrumented, the configuration Monte Carlo
// campaigns actually use (counter bumps cost the fast path a larger
// fraction than the slow one and would understate the ratio); a third,
// instrumented packed pass supplies the draw ledger and the noisy
// pJ/inference, which must match the ideal figure's accounting (noise
// draws are simulator bookkeeping, not energy events).
func runNoisySuite(cfg runConfig, p *pipeline, rep *Report, stderr io.Writer) error {
	bcfg := seicore.DefaultSEIBuildConfig()
	bcfg.DynamicThreshold = false
	bcfg.Layer.Model.ReadNoiseSigma = 0.05
	d, err := seicore.BuildSEI(p.q, nil, bcfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return fmt.Errorf("build noisy SEI: %w", err)
	}
	images := len(p.test.Images)
	run := func(packed, instrument bool) ([]int, float64, map[string]int64, error) {
		var rec *obs.Recorder
		if instrument {
			rec = obs.New()
		}
		d.Instrument(rec)
		d.SetFastPath(packed)
		start := time.Now()
		res := nn.PredictBatchObs(rec, d, p.test.Images, 0)
		sec := time.Since(start).Seconds()
		d.SetFastPath(true)
		d.Instrument(nil)
		labels := make([]int, len(res))
		for i, r := range res {
			if r.Err != nil {
				return nil, 0, nil, fmt.Errorf("noisy predict image %d: %w", i, r.Err)
			}
			labels[i] = r.Label
		}
		var counters map[string]int64
		if rec != nil {
			counters = rec.CounterValues()
		}
		return labels, sec, counters, nil
	}
	fmt.Fprintf(stderr, "seibench: noisy suite — float path over %d images (sigma=0.05)\n", images)
	floatLabels, floatSec, _, err := run(false, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "seibench: noisy suite — packed non-ideal path\n")
	packedLabels, packedSec, _, err := run(true, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "seibench: noisy suite — instrumented packed pass (counters)\n")
	ledgerLabels, _, counters, err := run(true, true)
	if err != nil {
		return err
	}
	for i := range packedLabels {
		if packedLabels[i] != ledgerLabels[i] {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("noisy suite: instrumented packed pass diverged at image %d (bug: counters must not change labels)", i))
			break
		}
	}
	for i := range floatLabels {
		if floatLabels[i] != packedLabels[i] {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("noisy suite: packed path diverged from float path at image %d (bug: must be bit-identical)", i))
			break
		}
	}
	if packedSec > 0 {
		rep.Metrics["noisy_images_per_sec"] = float64(images) / packedSec
		rep.Metrics["sei_noisy_speedup_x"] = floatSec / packedSec
	}
	rec := obs.Report{Name: "seibench-noisy", Counters: counters}
	if pj, err := power.EnergyPerInferencePJ(rec, power.DefaultLibrary(), int64(images)); err == nil {
		rep.Metrics["pj_per_inference_noisy"] = pj
	}
	rep.Derived["noisy_float_images_per_sec"] = float64(images) / floatSec
	rep.Derived["sei_noise_draws"] = float64(counters[obs.SEINoiseDraws])
	return nil
}

// serveMixSizes are the multi-image request shapes the steady serve
// run cycles through: mostly single-image requests, a steady trickle
// of 8-image batches and an occasional 64-image batch (one full
// engine micro-batch in a single request).
var serveMixSizes = []int{1, 8, 64}

// mixSizeFor picks request i's image count deterministically: every
// 20th request carries 64 images, every 5th (otherwise) carries 8.
func mixSizeFor(i int) int {
	switch {
	case i%20 == 19:
		return 64
	case i%5 == 4:
		return 8
	default:
		return 1
	}
}

// runServeSuite stands up the real sharded HTTP stack (registry →
// per-design batcher pool → handler) in-process and drives it with the
// open-loop generator twice: a steady Poisson run with a deterministic
// multi-image request mix, and a shorter burst run (clustered
// arrivals) against the same stack. Client-side latency quantiles come
// from the same histogram buckets the server exports.
func runServeSuite(cfg runConfig, p *pipeline, stderr io.Writer) (*ServeResult, error) {
	rec := obs.New()
	reg := serve.NewRegistry("", cfg.Seed)
	reg.Register("bench", p.design)
	pool, err := serve.NewPool(serve.BatcherConfig{
		MaxBatch: 64,
		MaxDelay: 2 * time.Millisecond,
		QueueCap: 256,
		Obs:      rec,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	ts := httptest.NewServer(serve.NewHandler(serve.Options{Registry: reg, Pool: pool, Obs: rec}))
	defer ts.Close()

	// Pre-marshal one body per mix size; images cycle through the test
	// split so batches are not 64 copies of one input.
	bodies := map[int][]byte{}
	for _, n := range serveMixSizes {
		imgs := make([][]float64, n)
		for k := range imgs {
			imgs[k] = p.test.Images[k%len(p.test.Images)].Data()
		}
		b, err := json.Marshal(map[string]any{"design": "bench", "images": imgs})
		if err != nil {
			return nil, err
		}
		bodies[n] = b
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	post := func(ctx context.Context, body []byte) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	lcfg := load.Config{
		Rate:     cfg.Rate,
		Requests: cfg.Requests,
		Seed:     cfg.Seed,
		Timeout:  10 * time.Second,
	}
	if lcfg.Rate <= 0 {
		lcfg.Rate = 250
		if cfg.Quick {
			lcfg.Rate = 150
		}
	}
	if lcfg.Requests <= 0 {
		lcfg.Requests = 1500
		if cfg.Quick {
			lcfg.Requests = 300
		}
	}
	fmt.Fprintf(stderr, "seibench: serve suite — %d mixed requests at %.0f/s (open loop)\n", lcfg.Requests, lcfg.Rate)
	mix := map[string]int{}
	images := 0
	for i := 0; i < lcfg.Requests; i++ {
		n := mixSizeFor(i)
		mix[fmt.Sprintf("%d-image", n)]++
		images += n
	}
	res, err := load.Run(context.Background(), lcfg, func(ctx context.Context, i int) error {
		return post(ctx, bodies[mixSizeFor(i)])
	})
	if err != nil {
		return nil, err
	}
	sr := &ServeResult{
		OfferedRPS:  res.OfferedRate,
		AchievedRPS: res.AchievedRate,
		Requests:    res.Sent,
		Errors:      res.Errors,
		Dropped:     res.Dropped,
		Canceled:    res.Canceled,
		Images:      images,
		Mix:         mix,
		Latency:     res.Latency,
	}

	// Burst run: same rate, clustered arrivals — 16 single-image
	// requests land back to back at every schedule point, the worst
	// case for per-design queue headroom.
	bcfg := load.Config{
		Rate:     lcfg.Rate,
		Requests: lcfg.Requests / 3,
		Seed:     lcfg.Seed + 1,
		Timeout:  10 * time.Second,
		Burst:    16,
	}
	if bcfg.Requests < 16 {
		bcfg.Requests = 16
	}
	fmt.Fprintf(stderr, "seibench: serve suite — %d burst-16 requests at %.0f/s\n", bcfg.Requests, bcfg.Rate)
	bres, err := load.Run(context.Background(), bcfg, func(ctx context.Context, _ int) error {
		return post(ctx, bodies[1])
	})
	if err != nil {
		return nil, err
	}
	sr.Burst = &BurstResult{
		BurstSize:   bcfg.Burst,
		OfferedRPS:  bres.OfferedRate,
		AchievedRPS: bres.AchievedRate,
		Requests:    bres.Sent,
		Errors:      bres.Errors,
		Dropped:     bres.Dropped,
		Canceled:    bres.Canceled,
		Latency:     bres.Latency,
	}
	return sr, nil
}

// runEnergySuite evaluates the fixture design with hardware counters
// on and joins the totals against the power library: the counter-
// derived pJ/inference trend metric (see DESIGN.md §14 for how this
// relates to the static internal/arch accounting). Two passes run over
// the same images: an unbounded baseline and a bounded pass with the
// runtime activation bounds (DESIGN.md §16) enabled. The bounded pass
// is the headline — that is how the engine runs when power matters —
// with the unbounded figure and the skip rate reported alongside so
// the saving stays visible as its own trend.
func runEnergySuite(cfg runConfig, p *pipeline, rep *Report, stderr io.Writer) error {
	fmt.Fprintf(stderr, "seibench: energy suite — instrumented evaluation over %d images\n", len(p.test.Images))
	lib := power.DefaultLibrary()
	rec := obs.New()
	p.design.Instrument(rec)
	errRate := nn.ClassifierErrorRateObs(rec, p.design, p.test, 0)
	obsRep := rec.Report("seibench")
	images := obsRep.Counters[nn.MetricEvalImages]
	pjUnbounded, err := power.EnergyPerInferencePJ(obsRep, lib, images)
	if err != nil {
		return err
	}

	fmt.Fprintln(stderr, "seibench: energy suite — bounded pass (runtime activation bounds)")
	brec := obs.New()
	p.design.Instrument(brec)
	p.design.SetBounded(true)
	boundedErrRate := nn.ClassifierErrorRateObs(brec, p.design, p.test, 0)
	p.design.SetBounded(false)
	p.design.Instrument(nil)
	brec.PublishSkipRates()
	bRep := brec.Report("seibench-bounded")
	pj, err := power.EnergyPerInferencePJ(bRep, lib, bRep.Counters[nn.MetricEvalImages])
	if err != nil {
		return err
	}
	breakdown, err := power.EnergyFromCounters(bRep, lib)
	if err != nil {
		return err
	}
	if boundedErrRate != errRate {
		// Bounded mode is exact on the ideal-analog path; a divergence
		// here is a bug worth a loud note, not a silent number.
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("energy suite: bounded error rate %.4f != unbounded %.4f", boundedErrRate, errRate))
	}
	rep.Metrics["pj_per_inference"] = pj
	rep.Metrics["pj_per_inference_unbounded"] = pjUnbounded
	rep.Metrics["sei_skip_rate"] = bRep.Gauges[obs.SEISkipRate]
	rep.Metrics["error_rate"] = errRate
	rep.Counters = bRep.Counters
	rep.Derived["energy_sa_pj"] = breakdown.SA
	rep.Derived["energy_rram_pj"] = breakdown.RRAM
	rep.Derived["energy_driver_pj"] = breakdown.Driver
	rep.Derived["energy_digital_pj"] = breakdown.Digital
	if pjUnbounded > 0 {
		rep.Derived["energy_saved_pct"] = 100 * (pjUnbounded - pj) / pjUnbounded
	}
	return nil
}

// runAll executes the requested suites and assembles the report.
func runAll(cfg runConfig, now time.Time, stderr io.Writer) (*Report, error) {
	rep := &Report{
		Schema:    SchemaVersion,
		StartedAt: now,
		GitSHA:    gitSHA(),
		Quick:     cfg.Quick,
		Metrics:   map[string]float64{},
		Derived:   map[string]float64{},
	}
	for _, s := range allSuites {
		if cfg.Suites[s] {
			rep.Suites = append(rep.Suites, s)
		}
	}

	bench, err := runBenchSuite(cfg, stderr)
	if err != nil {
		return nil, err
	}
	rep.Benchmarks = bench.Benchmarks
	for k, v := range bench.Derived {
		rep.Derived[k] = v
	}
	for _, b := range bench.Benchmarks {
		switch b.Name {
		case "SEIPredict":
			rep.Metrics["predict_ns_per_op"] = b.Metrics["ns/op"]
			if v, ok := b.Metrics["allocs/op"]; ok {
				rep.Metrics["predict_allocs_per_op"] = v
			}
		case "SEIPredictBatchSliced":
			rep.Metrics["images_per_sec"] = b.Metrics["images/sec"]
		case "SEIPredictNoisy":
			rep.Metrics["noisy_predict_ns_per_op"] = b.Metrics["ns/op"]
		case "SearchThresholds":
			rep.Metrics["search_ns_per_op"] = b.Metrics["ns/op"]
			if v, ok := b.Metrics["allocs/op"]; ok {
				rep.Metrics["search_allocs_per_op"] = v
			}
		}
	}
	rep.Machine = hostMachine(bench.CPU)
	if rep.GitSHA == "" {
		rep.Notes = append(rep.Notes, "git SHA unavailable")
	}

	if cfg.Suites["serve"] || cfg.Suites["energy"] || cfg.Suites["noisy"] {
		p, err := buildPipeline(cfg, stderr)
		if err != nil {
			return nil, err
		}
		if cfg.Suites["serve"] {
			sr, err := runServeSuite(cfg, p, stderr)
			if err != nil {
				return nil, err
			}
			rep.Serve = sr
			rep.Metrics["serve_p50_ms"] = sr.Latency.Quantile(0.50) * 1000
			rep.Metrics["serve_p99_ms"] = sr.Latency.Quantile(0.99) * 1000
			rep.Metrics["serve_p999_ms"] = sr.Latency.Quantile(0.999) * 1000
			rep.Metrics["serve_achieved_rps"] = sr.AchievedRPS
			if sr.Burst != nil {
				rep.Metrics["serve_burst_p99_ms"] = sr.Burst.Latency.Quantile(0.99) * 1000
			}
			if sr.Errors > 0 || sr.Dropped > 0 || sr.Canceled > 0 {
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("serve suite: %d errors, %d dropped, %d canceled of %d requests",
						sr.Errors, sr.Dropped, sr.Canceled, sr.Requests+sr.Dropped+sr.Canceled))
			}
		}
		if cfg.Suites["energy"] {
			if err := runEnergySuite(cfg, p, rep, stderr); err != nil {
				return nil, err
			}
		}
		if cfg.Suites["noisy"] {
			if err := runNoisySuite(cfg, p, rep, stderr); err != nil {
				return nil, err
			}
		}
	}
	if len(rep.Derived) == 0 {
		rep.Derived = nil
	}
	return rep, nil
}

// printRunSummary gives the human one screen of what just happened.
func printRunSummary(w io.Writer, rep *Report, path string) {
	fmt.Fprintf(w, "report: %s\n", path)
	fmt.Fprintf(w, "machine: %s/%s, %d CPU, %s\n", rep.Machine.GOOS, rep.Machine.GOARCH, rep.Machine.NumCPU, rep.Machine.CPU)
	for _, hm := range headlineMetrics {
		if v, ok := rep.Metrics[hm.Name]; ok {
			fmt.Fprintf(w, "  %-20s %14.1f %s\n", hm.Name, v, hm.Unit)
		}
	}
	for _, note := range rep.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
}
