package seicore

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"sei/internal/bitvec"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/rram"
)

// noisyBuildConfig is the shared base for the packed non-ideal tests:
// the default build with dynamic-threshold calibration off (so no
// training set is needed) and the device model modified by mod.
func noisyBuildConfig(mod func(*rram.DeviceModel)) SEIBuildConfig {
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	mod(&cfg.Layer.Model)
	return cfg
}

// TestNoisyPackedMatchesFloatPath pins the packed non-ideal path's core
// contract on several design shapes and device models: bit-identical
// labels AND bit-identical counter totals — including sei_noise_draws,
// the RNG-consumption ledger — versus the float path.
func TestNoisyPackedMatchesFloatPath(t *testing.T) {
	f := getFixture(t)
	perm := rand.New(rand.NewSource(11)).Perm(36)
	cases := []struct {
		name string
		cfg  func() SEIBuildConfig
	}{
		{"per-column", func() SEIBuildConfig {
			return noisyBuildConfig(func(m *rram.DeviceModel) { m.ReadNoiseSigma = 0.05 })
		}},
		{"per-cell", func() SEIBuildConfig {
			return noisyBuildConfig(func(m *rram.DeviceModel) {
				m.ReadNoiseSigma = 0.05
				m.ReadNoisePerCell = true
			})
		}},
		{"per-cell-ir-drop", func() SEIBuildConfig {
			return noisyBuildConfig(func(m *rram.DeviceModel) {
				m.ReadNoiseSigma = 0.05
				m.ReadNoisePerCell = true
				m.IRDropAlpha = 0.1
			})
		}},
		{"per-column-split-permuted", func() SEIBuildConfig {
			cfg := noisyBuildConfig(func(m *rram.DeviceModel) { m.ReadNoiseSigma = 0.05 })
			cfg.Layer.MaxCrossbar = 16
			cfg.Orders = [][]int{nil, perm}
			return cfg
		}},
		{"per-cell-split", func() SEIBuildConfig {
			cfg := noisyBuildConfig(func(m *rram.DeviceModel) {
				m.ReadNoiseSigma = 0.05
				m.ReadNoisePerCell = true
			})
			cfg.Layer.MaxCrossbar = 16
			return cfg
		}},
		{"unipolar-per-cell", func() SEIBuildConfig {
			cfg := noisyBuildConfig(func(m *rram.DeviceModel) {
				m.ReadNoiseSigma = 0.05
				m.ReadNoisePerCell = true
			})
			cfg.Layer.Mode = ModeUnipolarDynamic
			return cfg
		}},
	}
	sub := f.test.Subset(50)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := BuildSEI(f.q, nil, tc.cfg(), rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			if d.fast || !d.noisyPacked {
				t.Fatalf("fast=%v noisyPacked=%v, want the packed non-ideal path", d.fast, d.noisyPacked)
			}
			packedLabels, packedCounters := evalBothPaths(t, d, f.q, sub, true, 2)
			floatLabels, floatCounters := evalBothPaths(t, d, f.q, sub, false, 2)
			if !reflect.DeepEqual(packedLabels, floatLabels) {
				t.Errorf("packed noisy labels diverge from float path")
			}
			if !reflect.DeepEqual(packedCounters, floatCounters) {
				t.Errorf("counters diverge:\n packed %v\n float  %v", packedCounters, floatCounters)
			}
			if packedCounters[obs.SEINoiseDraws] == 0 {
				t.Errorf("noisy evaluation recorded zero sei_noise_draws")
			}
		})
	}
}

// TestNoisyPackedUninstrumentedMatchesFloat pins the campaign
// configuration — no Recorder attached — where stage 0 takes the
// row-strip kernel (predictFastNoisy's hw==nil branch), which the
// instrumented parity tests above never reach: labels must still be
// bit-identical to the float path run uninstrumented over the same
// per-chunk noise clones.
func TestNoisyPackedUninstrumentedMatchesFloat(t *testing.T) {
	f := getFixture(t)
	cfg := noisyBuildConfig(func(m *rram.DeviceModel) { m.ReadNoiseSigma = 0.05 })
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(50)
	run := func(fast bool) []int {
		d.SetFastPath(fast)
		defer d.SetFastPath(true)
		res := nn.PredictBatchObs(nil, d, sub.Images, 2)
		labels := make([]int, len(res))
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("image %d: %v", i, r.Err)
			}
			labels[i] = r.Label
		}
		return labels
	}
	if packed, float := run(true), run(false); !reflect.DeepEqual(packed, float) {
		t.Errorf("uninstrumented packed noisy labels diverge from float path")
	}
}

// TestNoisyPackedWorkerInvariance pins that per-cell noisy evaluation
// is bit-identical for every worker count: the counter-indexed streams
// are re-anchored per chunk exactly like the per-column RNGs.
func TestNoisyPackedWorkerInvariance(t *testing.T) {
	f := getFixture(t)
	cfg := noisyBuildConfig(func(m *rram.DeviceModel) {
		m.ReadNoiseSigma = 0.05
		m.ReadNoisePerCell = true
	})
	cfg.Layer.MaxCrossbar = 16
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(40)
	base, baseCounters := evalBothPaths(t, d, f.q, sub, true, 1)
	for _, workers := range []int{2, 8} {
		labels, counters := evalBothPaths(t, d, f.q, sub, true, workers)
		if !reflect.DeepEqual(base, labels) {
			t.Errorf("workers=%d: labels diverge from serial run", workers)
		}
		if !reflect.DeepEqual(baseCounters, counters) {
			t.Errorf("workers=%d: counters diverge from serial run", workers)
		}
	}
}

// TestAggregatedNoiseDistribution is the KS harness pinning the
// aggregated-variance approximation: for a fixed active-row set, the
// exact per-cell pass perturbs column c by σ·Σ w·g — a zero-mean
// Gaussian with variance σ²·Σw² — and the aggregated pass samples that
// distribution directly. Normalized by σ·√(Σw²), both must be standard
// normal: we check first/second moments and run a two-sample
// Kolmogorov–Smirnov test at α ≈ 0.001.
func TestAggregatedNoiseDistribution(t *testing.T) {
	f := getFixture(t)
	cfg := noisyBuildConfig(func(m *rram.DeviceModel) {
		m.ReadNoiseSigma = 0.05
		m.ReadNoisePerCell = true
	})
	cfg.Layer.MaxCrossbar = 16
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	layer := d.Convs[0]
	b := &layer.blocks[0]
	if b.sq == nil {
		t.Fatal("per-cell layer block has no squared-weight table")
	}
	m := layer.M
	const sigma = 0.05

	// Activate about two thirds of the layer's inputs.
	in := bitvec.New(layer.N)
	ones := 0
	for j := 0; j < layer.N; j++ {
		if j%3 != 0 {
			in.Set(j)
		}
	}
	for _, j := range b.inputs {
		if in.Get(j) {
			ones++
		}
	}
	if ones == 0 {
		t.Fatal("no active rows in block")
	}

	// Per-column normalizers from the variance table.
	norm := make([]float64, m)
	sq := b.sq.Data()
	for local, j := range b.inputs {
		if !in.Get(j) {
			continue
		}
		for c, v := range sq[local*m : (local+1)*m] {
			norm[c] += v
		}
	}
	for c := range norm {
		norm[c] = sigma * math.Sqrt(norm[c])
	}

	const trials = 400
	g := make([]float64, m)
	vs := make([]float64, m)
	var exact, agg []float64
	for i := 0; i < trials; i++ {
		main := make([]float64, m)
		st := newNoiseStream(int64(1000 + i))
		if draws := cellNoiseBits(st, sigma, b, in, main, g); draws != ones*m {
			t.Fatalf("exact pass consumed %d draws, want %d", draws, ones*m)
		}
		for c, v := range main {
			if norm[c] > 0 {
				exact = append(exact, v/norm[c])
			}
		}
		main = make([]float64, m)
		st = newNoiseStream(int64(500000 + i))
		if draws := cellNoiseAggregated(st, sigma, b, in, main, g, vs); draws != m {
			t.Fatalf("aggregated pass consumed %d draws, want %d", draws, m)
		}
		for c, v := range main {
			if norm[c] > 0 {
				agg = append(agg, v/norm[c])
			}
		}
	}

	checkStdNormal := func(name string, xs []float64) {
		t.Helper()
		var mean, v float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(len(xs))
		if math.Abs(mean) > 0.05 {
			t.Errorf("%s: normalized mean %.4f, want ≈ 0", name, mean)
		}
		if math.Abs(v-1) > 0.1 {
			t.Errorf("%s: normalized variance %.4f, want ≈ 1", name, v)
		}
	}
	checkStdNormal("exact", exact)
	checkStdNormal("aggregated", agg)

	if d := ksStatistic(exact, agg); d > 1.95*math.Sqrt(float64(len(exact)+len(agg))/float64(len(exact)*len(agg))) {
		t.Errorf("KS statistic %.4f exceeds the α≈0.001 critical value for n=%d m=%d", d, len(exact), len(agg))
	}
}

// ksStatistic computes the two-sample Kolmogorov–Smirnov statistic
// sup|F₁−F₂|. Both inputs are sorted in place.
func ksStatistic(a, b []float64) float64 {
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	var d float64
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		if diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b))); diff > d {
			d = diff
		}
	}
	return d
}

// TestNoiseApproxPrecedence pins the interaction between the two
// opt-in approximations (DESIGN.md §17):
//
//   - SetBoundedApprox alone forces noisy predicts onto the float
//     path's approximate bounded walk (the PR9 semantics).
//   - SetNoiseApprox wins when both are on: predicts stay on the
//     packed path and the bounded walk never runs.
//   - Per-cell layers never take the float path's approximate bounded
//     branch — boundedApprox alone yields the exact float evaluation.
func TestNoiseApproxPrecedence(t *testing.T) {
	f := getFixture(t)
	sub := f.test.Subset(40)

	build := func(t *testing.T, perCell bool) *SEIDesign {
		t.Helper()
		cfg := noisyBuildConfig(func(m *rram.DeviceModel) {
			m.ReadNoiseSigma = 0.05
			m.ReadNoisePerCell = perCell
		})
		cfg.Layer.MaxCrossbar = 16 // split blocks, so bound tables exist
		d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(10)))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	run := func(t *testing.T, d *SEIDesign, fast, boundedApprox, noiseApprox bool) ([]int, map[string]int64) {
		t.Helper()
		d.SetBoundedApprox(boundedApprox)
		d.SetNoiseApprox(noiseApprox)
		defer func() {
			d.SetBoundedApprox(false)
			d.SetNoiseApprox(false)
		}()
		return evalBothPaths(t, d, f.q, sub, fast, 2)
	}

	t.Run("bounded-approx-forces-float", func(t *testing.T) {
		d := build(t, false)
		gotLabels, gotCounters := run(t, d, true, true, false)
		wantLabels, wantCounters := run(t, d, false, true, false)
		if !reflect.DeepEqual(gotLabels, wantLabels) {
			t.Errorf("default dispatch with boundedApprox diverges from the forced float path")
		}
		if !reflect.DeepEqual(gotCounters, wantCounters) {
			t.Errorf("counters diverge:\n dispatch %v\n float    %v", gotCounters, wantCounters)
		}
		// The approximate bounded walk must actually have run: it is the
		// only path that skips rows and draws noise per undecided column.
		if gotCounters[obs.SEIRowsSkipped] == 0 && gotCounters[obs.SEIColsEarlyExit] == 0 {
			t.Errorf("boundedApprox run recorded no bound activity; float approx walk did not run")
		}
	})

	t.Run("noise-approx-wins", func(t *testing.T) {
		d := build(t, false)
		// Per-column layers have no aggregated mode (their exact pass is
		// already one draw per column), so with both approximations on the
		// packed path must reproduce the plain packed run exactly — and
		// record none of the bounded walk's skip activity.
		bothLabels, bothCounters := run(t, d, true, true, true)
		packedLabels, packedCounters := run(t, d, true, false, false)
		if !reflect.DeepEqual(bothLabels, packedLabels) {
			t.Errorf("noiseApprox+boundedApprox diverges from the plain packed run")
		}
		if !reflect.DeepEqual(bothCounters, packedCounters) {
			t.Errorf("counters diverge:\n both   %v\n packed %v", bothCounters, packedCounters)
		}
		if bothCounters[obs.SEIRowsSkipped] != 0 || bothCounters[obs.SEIColsEarlyExit] != 0 {
			t.Errorf("noiseApprox run recorded bound activity; float approx walk ran despite precedence")
		}
	})

	t.Run("per-cell-bounded-approx-is-exact-float", func(t *testing.T) {
		d := build(t, true)
		gotLabels, gotCounters := run(t, d, false, true, false)
		wantLabels, wantCounters := run(t, d, false, false, false)
		if !reflect.DeepEqual(gotLabels, wantLabels) {
			t.Errorf("per-cell layers took the approximate bounded branch")
		}
		if !reflect.DeepEqual(gotCounters, wantCounters) {
			t.Errorf("counters diverge:\n approx %v\n exact  %v", gotCounters, wantCounters)
		}
	})

	t.Run("per-cell-noise-approx-changes-draws", func(t *testing.T) {
		d := build(t, true)
		exactLabels, exactCounters := run(t, d, true, false, false)
		aggLabels, aggCounters := run(t, d, true, false, true)
		if aggCounters[obs.SEINoiseDraws] >= exactCounters[obs.SEINoiseDraws] {
			t.Errorf("aggregated mode drew %d ≥ exact %d; approximation saved nothing",
				aggCounters[obs.SEINoiseDraws], exactCounters[obs.SEINoiseDraws])
		}
		// Labels are expected to be *close* but not necessarily equal;
		// just require the evaluation to be sane (non-degenerate spread
		// of draws) and deterministic.
		again, _ := run(t, d, true, false, true)
		if !reflect.DeepEqual(aggLabels, again) {
			t.Errorf("aggregated mode is not deterministic across runs")
		}
		_ = exactLabels
	})
}

// TestNoisyPackedZeroAllocs pins the arena reuse on the packed
// non-ideal path: after the scratch pool is warm, Predict performs
// zero heap allocations for both noise models.
func TestNoisyPackedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is lossy under -race; allocation counts are not meaningful")
	}
	f := getFixture(t)
	for _, tc := range []struct {
		name    string
		perCell bool
	}{{"per-column", false}, {"per-cell", true}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := noisyBuildConfig(func(m *rram.DeviceModel) {
				m.ReadNoiseSigma = 0.05
				m.ReadNoisePerCell = tc.perCell
			})
			d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(12)))
			if err != nil {
				t.Fatal(err)
			}
			img := f.test.Images[0]
			if avg := testing.AllocsPerRun(200, func() { d.Predict(img) }); avg != 0 {
				t.Errorf("packed noisy Predict allocates %.1f objects per image, want 0", avg)
			}
		})
	}
}

// TestPerCellSurvivesSaveLoad pins that a snapshot round-trip restores
// the per-cell noise configuration: the loaded design re-enables the
// packed non-ideal path and evaluates deterministically.
func TestPerCellSurvivesSaveLoad(t *testing.T) {
	f := getFixture(t)
	cfg := noisyBuildConfig(func(m *rram.DeviceModel) {
		m.ReadNoiseSigma = 0.05
		m.ReadNoisePerCell = true
	})
	cfg.Layer.MaxCrossbar = 16
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	a, err := LoadDesign(bytes.NewReader(data), 21)
	if err != nil {
		t.Fatal(err)
	}
	if a.fast || !a.noisyPacked {
		t.Fatalf("loaded per-cell design: fast=%v noisyPacked=%v, want packed non-ideal path", a.fast, a.noisyPacked)
	}
	b, err := LoadDesign(bytes.NewReader(data), 21)
	if err != nil {
		t.Fatal(err)
	}
	sub := f.test.Subset(30)
	labelsA := make([]int, sub.Len())
	for i, img := range sub.Images {
		labelsA[i] = a.Predict(img)
	}
	for i, img := range sub.Images {
		if got := b.Predict(img); got != labelsA[i] {
			t.Fatalf("image %d: two identically-seeded loads disagree (%d vs %d)", i, labelsA[i], got)
		}
	}
	res := nn.PredictBatchObs(nil, a, sub.Images, 4)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}
