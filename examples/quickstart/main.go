// Quickstart: the whole paper in one call — train a Table-2 CNN on
// the synthetic MNIST task, quantize its intermediate data to 1 bit
// (Algorithm 1), map it onto SEI crossbars, and compare accuracy,
// energy and area against the traditional DAC+ADC design.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"sei"
)

func main() {
	cfg := sei.DefaultPipelineConfig()
	cfg.Log = os.Stderr // watch progress

	res, err := sei.RunPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SEI quickstart (Network 2, synthetic MNIST)")
	fmt.Printf("  classification error:\n")
	fmt.Printf("    float CNN          %5.2f%%\n", 100*res.FloatError)
	fmt.Printf("    1-bit quantized    %5.2f%%\n", 100*res.QuantError)
	fmt.Printf("    SEI hardware       %5.2f%%\n", 100*res.SEIError)
	fmt.Printf("  per-picture energy:\n")
	fmt.Printf("    DAC+ADC baseline   %8.3f uJ\n", res.BaseEnergyUJ)
	fmt.Printf("    SEI                %8.3f uJ  (%.1f%% saving)\n", res.EnergyUJ, 100*res.EnergySaving)
	fmt.Printf("  chip area:\n")
	fmt.Printf("    DAC+ADC baseline   %8.4f mm2\n", res.BaseAreaMM2)
	fmt.Printf("    SEI                %8.4f mm2  (%.1f%% saving)\n", res.AreaMM2, 100*res.AreaSaving)
	fmt.Printf("  SEI efficiency: %.0f GOPs/J\n", res.GOPsPerJ)
}
