package seicore

// The bounded variant of the bit-sliced batch path. Per 64-image word
// it tracks a per-lane undecided column mask and replays the per-image
// bounded walk (fast_bounded.go / bounds.go) lane by lane: each lane's
// checkpoint triggers at that lane's own next active row, a row's
// AddRowLanes drive is masked down to the lanes still undecided, and a
// word goes untouched once every lane of its block has decided. The
// same pool-crop skip applies wholesale, with stage 0 using the
// live/cropped coverage split tables.
//
// Parity contract (pinned by TestBoundedSlicedMatchesBoundedFast):
// labels, hw_* counter totals AND sei_* skip-counter totals are
// bit-identical to per-image bounded Predict over the same images —
// the bounded analogue of the unbounded sliced path's contract. The
// walk below mirrors sumsBitsBounded decision for decision: a column
// decides at exactly the same scan point on either engine because both
// call vecf.BoundCols with identical partial sums and tables.

import (
	"math/bits"

	"sei/internal/nn"
	"sei/internal/tensor"
	"sei/internal/vecf"
)

// predictSlicedBounded runs the bit-sliced forward pass with the
// activation-bound and pool-crop skips. The caller owns s and has
// validated the input shapes.
func (d *SEIDesign) predictSlicedBounded(imgs []*tensor.Tensor, out []nn.PredictResult, s *slicedScratch) {
	q := d.Q
	lanes := len(imgs)
	batchMask := ^uint64(0)
	if lanes < vecf.Lanes {
		batchMask = 1<<uint(lanes) - 1
	}

	// Stage 0: the compute loops already skip pool-cropped positions
	// (their outputs are unreadable); bounded mode additionally stops
	// charging them — active inputs split into driven (live coverage)
	// and skipped (cropped coverage), MVM/column counts drop to the
	// live placements.
	g := &s.geom[0]
	mapLen := g.filters * g.pooledH * g.pooledW
	cur := s.cur[:mapLen]
	for i := range cur {
		cur[i] = 0
	}
	d.slicedStage0(imgs, s, cur)
	plane := g.inH * g.inW
	var driven0, skipped0 int64
	for p, w := range s.nz[:g.inC*plane] {
		if w != 0 {
			cnt := int64(bits.OnesCount64(w))
			driven0 += cnt * int64(s.coverLive[p%plane])
			skipped0 += cnt * int64(s.coverSkip[p%plane])
		}
	}
	if h := d.Input.hw; h != nil {
		liveH, liveW := g.outH, g.outW
		if g.pool > 1 {
			liveH, liveW = g.pooledH*g.pool, g.pooledW*g.pool
		}
		livePos := int64(liveH * liveW)
		h.MVM(livePos * int64(lanes))
		h.ColumnActivations(livePos * int64(g.filters) * int64(lanes))
		h.ActiveInputs(driven0)
	}
	d.Input.skip.Record(driven0, skipped0, 0, 0, 0)
	if g.pool > 1 {
		q.CountORPool(int64(lanes) * int64(mapLen))
	}

	// Deeper SEI stages: pool-crop skip plus the per-lane bounded walk.
	for l := 1; l < len(q.Convs); l++ {
		layer := d.Convs[l-1]
		g := &s.geom[l]
		in := s.cur
		outMap := s.next[:g.filters*g.pooledH*g.pooledW]
		for i := range outMap {
			outMap[i] = 0
		}
		win := s.win[:g.fan]
		fired := s.fired[:lanes*layer.M]
		dthr := int32(layer.DigitalThreshold)
		var cropSkip int64
		for oy := 0; oy < g.outH; oy++ {
			for ox := 0; ox < g.outW; ox++ {
				py, px := oy, ox
				cropped := false
				if g.pool > 1 {
					py /= g.pool
					px /= g.pool
					cropped = py >= g.pooledH || px >= g.pooledW
				}
				di := 0
				for ch := 0; ch < g.inC; ch++ {
					src := (ch*g.inH+oy*g.stride)*g.inW + ox*g.stride
					for ky := 0; ky < g.kh; ky++ {
						copy(win[di:di+g.kw], in[src:src+g.kw])
						di += g.kw
						src += g.inW
					}
				}
				if cropped {
					for _, w := range win {
						cropSkip += int64(bits.OnesCount64(w & batchMask))
					}
					continue
				}
				layer.slicedCountsBounded(win, lanes, batchMask, s)
				for k := 0; k < layer.M; k++ {
					var w uint64
					for lane := 0; lane < lanes; lane++ {
						if fired[lane*layer.M+k] >= dthr {
							w |= 1 << uint(lane)
						}
					}
					if w != 0 {
						outMap[(k*g.pooledH+py)*g.pooledW+px] |= w
					}
				}
			}
		}
		if g.pool > 1 {
			q.CountORPool(int64(lanes) * int64(g.filters*g.pooledH*g.pooledW))
		}
		if cropSkip > 0 {
			layer.skip.Record(0, cropSkip, 0, 0, 0)
		}
		s.cur, s.next = s.next, s.cur
	}

	// FC stage: argmax readout, nothing to bound.
	d.FC.slicedScores(s.cur, lanes, s)
	m := d.FC.M
	for lane := 0; lane < lanes; lane++ {
		sc := s.scores[lane*m : lane*m+m]
		best, bi := sc[0], 0
		for i, v := range sc {
			if v > best {
				best, bi = v, i
			}
		}
		out[lane] = nn.PredictResult{Label: bi}
	}
}

// slicedCountsBounded is evalBoundedCounts over a lane-major window:
// per participating lane the same blocks are bounded, full-scanned or
// skipped wholesale, and every counter — hw_* and sei_* — aggregates
// the per-lane events the per-image path would record.
func (l *SEIConvLayer) slicedCountsBounded(win []uint64, lanes int, batchMask uint64, s *slicedScratch) {
	if !l.boundable() {
		l.slicedCounts(win, lanes, s)
		if h := l.hw; h != nil {
			h.MVM(int64(l.K) * int64(lanes))
			h.SACompares(int64(l.K*l.M) * int64(lanes))
			h.ColumnActivations(int64(l.K*l.M) * int64(lanes))
		}
		return
	}
	m := l.M
	full := colMask(m)
	fired := s.fired[:lanes*m]
	for i := range fired {
		fired[i] = 0
	}
	outUndec := s.outUndec[:lanes]
	for lane := range outUndec {
		outUndec[lane] = full
	}
	var mvms, saCmps, driven, skipped, colsEarly, evals, blocksSkipped int64
	for bi := range l.blocks {
		b := &l.blocks[bi]
		var part uint64
		for lane := 0; lane < lanes; lane++ {
			if outUndec[lane] != 0 {
				part |= 1 << uint(lane)
			}
		}
		nonPart := batchMask &^ part
		blocksSkipped += int64(bits.OnesCount64(nonPart))
		if part == 0 {
			for _, j := range b.inputs {
				skipped += int64(bits.OnesCount64(win[j] & batchMask))
			}
			continue
		}
		mvms += int64(bits.OnesCount64(part))
		if b.bnd != nil && l.Gamma == 0 {
			ref := l.BaseThr[bi]
			d2, s2, c2, e2 := b.slicedSumsBounded(win, part, nonPart, ref, s)
			driven += d2
			skipped += s2
			colsEarly += c2
			evals += e2
			l.hw.ActiveInputs(d2)
			for t := part; t != 0; t &= t - 1 {
				lane := bits.TrailingZeros64(t)
				undec := s.undec[lane]
				saCmps += int64(bits.OnesCount64(undec))
				firedMask := s.fired1[lane]
				a := s.acc[lane*m : lane*m+m]
				for u := undec; u != 0; u &= u - 1 {
					c := bits.TrailingZeros64(u)
					if a[c] > ref {
						firedMask |= 1 << uint(c)
					}
				}
				f := fired[lane*m : lane*m+m]
				for u := firedMask; u != 0; u &= u - 1 {
					f[bits.TrailingZeros64(u)]++
				}
			}
		} else {
			// Dynamic reference (Gamma slope or unipolar w0 column):
			// participating lanes scan in full, as per-image.
			d2, s2 := b.slicedSumsMasked(win, part, nonPart, l.Gamma != 0, s)
			driven += d2
			skipped += s2
			l.hw.ActiveInputs(d2)
			for t := part; t != 0; t &= t - 1 {
				lane := bits.TrailingZeros64(t)
				ref := l.BaseThr[bi]
				if l.Gamma != 0 {
					ref += l.Gamma * (float64(s.ones[lane]) - l.OnesMean[bi])
				}
				if b.w0 != nil {
					ref += s.w0[lane]
				}
				a := s.acc[lane*m : lane*m+m]
				f := fired[lane*m : lane*m+m]
				for c, v := range a {
					if v > ref {
						f[c]++
					}
				}
				saCmps += int64(m)
			}
		}
		if l.K > 1 {
			rem := l.K - 1 - bi
			for t := part; t != 0; t &= t - 1 {
				lane := bits.TrailingZeros64(t)
				f := fired[lane*m : lane*m+m]
				var undec uint64
				for u := outUndec[lane]; u != 0; u &= u - 1 {
					c := bits.TrailingZeros64(u)
					if int(f[c]) >= l.DigitalThreshold {
						continue
					}
					if int(f[c])+rem < l.DigitalThreshold {
						continue
					}
					undec |= 1 << uint(c)
				}
				outUndec[lane] = undec
			}
		}
	}
	if h := l.hw; h != nil {
		h.MVM(mvms)
		h.SACompares(saCmps)
		h.ColumnActivations(saCmps)
	}
	l.skip.Record(driven, skipped, colsEarly, evals, blocksSkipped)
}

// slicedSumsBounded is sumsBitsBounded over a lane-major window: the
// block's rows are walked once in ascending local order; per active
// row each participating, still-undecided lane whose checkpoint
// advanced evaluates the bound, then the row is driven only into the
// lanes still alive. Active bits in decided lanes count skipped, bits
// in non-participating lanes count toward their wholesale block skip.
// Per-lane outcomes land in s.undec / s.fired1; partial sums in s.acc
// equal the full scan's values for every undecided column.
func (b *seiBlock) slicedSumsBounded(win []uint64, part, nonPart uint64, ref float64, s *slicedScratch) (driven, skipped, colsEarly, evals int64) {
	cb := b.bnd
	m := cb.m
	acc := s.acc[:vecf.Lanes*m]
	for i := range acc {
		acc[i] = 0
	}
	full := colMask(m)
	for t := part; t != 0; t &= t - 1 {
		lane := bits.TrailingZeros64(t)
		s.undec[lane] = full
		s.fired1[lane] = 0
		s.lastCp[lane] = -1
	}
	alive := part
	data := b.eff.Data()
	for local, j := range b.inputs {
		w := win[j]
		if w == 0 {
			continue
		}
		skipped += int64(bits.OnesCount64(w & nonPart))
		if alive == 0 {
			skipped += int64(bits.OnesCount64(w & part))
			continue
		}
		cp := int32(local / cb.stride)
		base := int(cp) * m
		for t := w & alive; t != 0; t &= t - 1 {
			lane := bits.TrailingZeros64(t)
			if s.lastCp[lane] >= cp {
				continue
			}
			s.lastCp[lane] = cp
			u := s.undec[lane]
			evals += int64(bits.OnesCount64(u))
			dec0, dec1 := vecf.BoundCols(acc[lane*m:lane*m+m],
				cb.sufPos[base:base+m], cb.sufNeg[base:base+m], cb.sufAbs[base:base+m],
				cb.slackU[cp], ref, u)
			s.fired1[lane] |= dec1
			u &^= dec0 | dec1
			s.undec[lane] = u
			if u == 0 {
				alive &^= 1 << uint(lane)
			}
		}
		aw := w & alive
		driven += int64(bits.OnesCount64(aw))
		skipped += int64(bits.OnesCount64(w & part &^ alive))
		if aw != 0 {
			vecf.AddRowLanes(acc, data[local*m:(local+1)*m], aw)
		}
	}
	for t := part; t != 0; t &= t - 1 {
		lane := bits.TrailingZeros64(t)
		colsEarly += int64(bits.OnesCount64(full &^ s.undec[lane]))
	}
	return driven, skipped, colsEarly, evals
}

// slicedSumsMasked is slicedSums restricted to the participating
// lanes: rows drive only lanes whose outputs are still undecided,
// active bits in resolved lanes count toward their wholesale block
// skip. Per-lane ones land in s.ones when needed (Gamma reference),
// dynamic-column sums in s.w0 when the block carries them.
func (b *seiBlock) slicedSumsMasked(win []uint64, part, nonPart uint64, needOnes bool, s *slicedScratch) (driven, skipped int64) {
	m := b.eff.Dim(1)
	acc := s.acc[:vecf.Lanes*m]
	for i := range acc {
		acc[i] = 0
	}
	dyn := b.w0 != nil
	if dyn {
		for i := range s.w0 {
			s.w0[i] = 0
		}
	}
	if needOnes {
		for i := range s.ones {
			s.ones[i] = 0
		}
	}
	data := b.eff.Data()
	for local, j := range b.inputs {
		w := win[j]
		if w == 0 {
			continue
		}
		skipped += int64(bits.OnesCount64(w & nonPart))
		pw := w & part
		if pw == 0 {
			continue
		}
		driven += int64(bits.OnesCount64(pw))
		vecf.AddRowLanes(acc, data[local*m:(local+1)*m], pw)
		if needOnes || dyn {
			var w0v float64
			if dyn {
				w0v = b.w0[local]
			}
			for t := pw; t != 0; t &= t - 1 {
				lane := bits.TrailingZeros64(t)
				if needOnes {
					s.ones[lane]++
				}
				if dyn {
					s.w0[lane] += w0v
				}
			}
		}
	}
	return driven, skipped
}
