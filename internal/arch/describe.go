package arch

import (
	"fmt"
	"io"

	"sei/internal/power"
)

// ApplyActivity refines the per-picture counts with measured input
// activity: activity[i] is the mean fraction of active (1) inputs
// entering layer i (1.0 for the analog input layer). Only the
// data-dependent counts scale — cell read events and 1-bit gate
// drives; interface conversions (every column is still sensed or
// converted, every analog row still driven) do not. This ties the
// functional simulation's Table-1 sparsity to the energy model: with
// >90 % of intermediate data at zero, the crossbar read energy drops
// by the same factor.
func (m *Mapping) ApplyActivity(activity []float64) error {
	if len(activity) != len(m.Layers) {
		return fmt.Errorf("arch: %d activity factors for %d layers", len(activity), len(m.Layers))
	}
	for i := range m.Layers {
		a := activity[i]
		if a <= 0 || a > 1 {
			return fmt.Errorf("arch: activity[%d] = %g outside (0,1]", i, a)
		}
		c := &m.Layers[i].Counts
		c.CellReads = int64(float64(c.CellReads) * a)
		if i > 0 {
			// 1-bit gate drives happen only for active inputs; the
			// analog input layer's rows are always driven.
			c.RowDrives = int64(float64(c.RowDrives) * a)
		}
	}
	return nil
}

// Describe prints a human-readable floorplan of the mapping: one row
// per layer with its logical matrix, physical crossbar allocation,
// interface modules and per-picture conversion counts — the table a
// designer would sanity-check before committing a layout.
func (m *Mapping) Describe(w io.Writer, lib power.Library) {
	fmt.Fprintf(w, "Mapping: structure %s, max crossbar %d\n", m.Config.Structure, m.Config.MaxCrossbar)
	fmt.Fprintf(w, "  %-8s %11s %6s %9s %10s %6s %6s %5s %12s %12s\n",
		"layer", "matrix", "uses", "blocks", "crossbars", "DACs", "ADCs", "SAs", "DAC conv/pic", "ADC conv/pic")
	for _, l := range m.Layers {
		fmt.Fprintf(w, "  %-8s %5dx%-5d %6d %9d %10d %6d %6d %5d %12d %12d\n",
			l.Geom.Name, l.Geom.N, l.Geom.M, l.Geom.Uses, l.RowBlocks, l.Crossbars,
			l.Inventory.DACs, l.Inventory.ADCs, l.Inventory.SAs,
			l.Counts.DACConversions, l.Counts.ADCConversions)
	}
	inv := m.TotalInventory()
	_, e := m.Energy(lib)
	_, a := m.Area(lib)
	fmt.Fprintf(w, "  totals: %d crossbars, %d cells, %d DACs, %d ADCs, %d SAs\n",
		inv.Crossbars, inv.Cells, inv.DACs, inv.ADCs, inv.SAs)
	fmt.Fprintf(w, "  energy %.3f uJ/pic  |%s|\n", power.MicroJoules(e), power.Bar(e, 32))
	fmt.Fprintf(w, "  area   %.4f mm2    |%s|\n", power.SquareMM(a), power.Bar(a, 32))
}
