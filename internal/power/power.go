// Package power is the component-level energy and area model behind
// the paper's Fig. 1 breakdown and Table 5. The paper takes analog
// peripheral and RRAM numbers from [17–19] and digital/buffer numbers
// from [20]; this library plays the same role with constants chosen
// from the same literature so that the *ratios* the paper reports
// (interfaces ≥98 % of a DAC+ADC design, ≥95 % energy saving for SEI,
// 74–86 % area saving) emerge from the usage counts computed by
// package arch. Absolute µJ values differ from the paper's (their
// exact constants are unpublished); EXPERIMENTS.md records both.
package power

import "fmt"

// Library holds per-component energy (picojoules per operation) and
// area (µm²) constants.
type Library struct {
	// ADCEnergyPJ is the energy of one 8-bit analog-to-digital
	// conversion. High-throughput 8-bit ADCs of the paper's era run at
	// ~1 nJ/conversion when sized for crossbar column rates [17,19].
	ADCEnergyPJ float64
	// ADCAreaUM2 is one ADC's area (8-bit SAR, ≈0.0012 mm² [19]).
	ADCAreaUM2 float64
	// DACEnergyPJ is one 8-bit digital-to-analog conversion including
	// the row drive [18], counted per row per evaluation. Calibrated so
	// that the input layer's DACs are a few percent of the baseline
	// chip energy (Section 3.2 of the paper reports ≈3 %).
	DACEnergyPJ float64
	// DACAreaUM2 is one row DAC's area [18].
	DACAreaUM2 float64
	// SAEnergyPJ is one sense-amplifier threshold evaluation — the
	// interface SEI uses instead of an ADC; three orders of magnitude
	// cheaper.
	SAEnergyPJ float64
	// SAAreaUM2 is one SA (latch comparator + reference tap).
	SAAreaUM2 float64
	// CellReadEnergyPJ is the average read energy of one active RRAM
	// cell per evaluation cycle at low read voltage (MNSIM-class
	// number).
	CellReadEnergyPJ float64
	// CellAreaUM2 is one 4F² RRAM cell at F = 40 nm.
	CellAreaUM2 float64
	// DriverEnergyPJ is the energy to drive one crossbar row for one
	// evaluation (transmission gate or sample-and-hold buffer load).
	DriverEnergyPJ float64
	// DriverAreaUM2 is one row driver (gate + decode slice).
	DriverAreaUM2 float64
	// AddEnergyPJ, ShiftEnergyPJ, SubEnergyPJ, PopcountEnergyPJ are
	// 8–16-bit digital operation energies (scaled from [20]).
	AddEnergyPJ, ShiftEnergyPJ, SubEnergyPJ, PopcountEnergyPJ float64
	// DigitalBlockAreaUM2 is the merge/threshold logic area per
	// crossbar.
	DigitalBlockAreaUM2 float64
	// BufferEnergyPJPerByte is one SRAM/register-file byte access
	// (read or write) for inter-layer data [20].
	BufferEnergyPJPerByte float64
	// BufferAreaUM2PerByte is inter-layer SRAM buffer area per byte.
	BufferAreaUM2PerByte float64
	// DRAMEnergyPJPerByte is the cost of fetching picture data from
	// off-chip memory [20].
	DRAMEnergyPJPerByte float64
}

// DefaultLibrary returns the calibrated constants (see package
// comment and DESIGN.md §5).
func DefaultLibrary() Library {
	return Library{
		ADCEnergyPJ:           1000,
		ADCAreaUM2:            1200,
		DACEnergyPJ:           160,
		DACAreaUM2:            320,
		SAEnergyPJ:            1,
		SAAreaUM2:             25,
		CellReadEnergyPJ:      0.0002,
		CellAreaUM2:           0.0064,
		DriverEnergyPJ:        0.05,
		DriverAreaUM2:         0.5,
		AddEnergyPJ:           0.03,
		ShiftEnergyPJ:         0.01,
		SubEnergyPJ:           0.03,
		PopcountEnergyPJ:      0.05,
		DigitalBlockAreaUM2:   150,
		BufferEnergyPJPerByte: 0.3,
		BufferAreaUM2PerByte:  1.0,
		DRAMEnergyPJPerByte:   20,
	}
}

// Validate rejects non-physical libraries.
func (l Library) Validate() error {
	fields := map[string]float64{
		"ADCEnergyPJ": l.ADCEnergyPJ, "ADCAreaUM2": l.ADCAreaUM2,
		"DACEnergyPJ": l.DACEnergyPJ, "DACAreaUM2": l.DACAreaUM2,
		"SAEnergyPJ": l.SAEnergyPJ, "SAAreaUM2": l.SAAreaUM2,
		"CellReadEnergyPJ": l.CellReadEnergyPJ, "CellAreaUM2": l.CellAreaUM2,
		"DriverEnergyPJ": l.DriverEnergyPJ, "DriverAreaUM2": l.DriverAreaUM2,
		"AddEnergyPJ": l.AddEnergyPJ, "ShiftEnergyPJ": l.ShiftEnergyPJ,
		"SubEnergyPJ": l.SubEnergyPJ, "PopcountEnergyPJ": l.PopcountEnergyPJ,
		"DigitalBlockAreaUM2":   l.DigitalBlockAreaUM2,
		"BufferEnergyPJPerByte": l.BufferEnergyPJPerByte,
		"BufferAreaUM2PerByte":  l.BufferAreaUM2PerByte,
		"DRAMEnergyPJPerByte":   l.DRAMEnergyPJPerByte,
	}
	for name, v := range fields {
		if v <= 0 {
			return fmt.Errorf("power: %s = %g must be positive", name, v)
		}
	}
	return nil
}

// Counts are per-picture usage counts for one mapped layer.
type Counts struct {
	DACConversions int64
	ADCConversions int64
	SAEvaluations  int64
	CellReads      int64 // active cell·cycle events
	RowDrives      int64 // physical row activations
	Adds           int64
	Shifts         int64
	Subs           int64
	Popcounts      int64
	BufferBytes    int64 // inter-layer buffer accesses in bytes
	DRAMBytes      int64 // off-chip picture fetch
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.DACConversions += o.DACConversions
	c.ADCConversions += o.ADCConversions
	c.SAEvaluations += o.SAEvaluations
	c.CellReads += o.CellReads
	c.RowDrives += o.RowDrives
	c.Adds += o.Adds
	c.Shifts += o.Shifts
	c.Subs += o.Subs
	c.Popcounts += o.Popcounts
	c.BufferBytes += o.BufferBytes
	c.DRAMBytes += o.DRAMBytes
}

// Inventory is the physical module count of one mapped layer
// (area-relevant; built once regardless of how many times the layer is
// reused per picture — the paper's area baseline reuses kernels
// across feature-map positions).
type Inventory struct {
	DACs          int64
	ADCs          int64
	SAs           int64
	Cells         int64
	DriverRows    int64
	Crossbars     int64
	DigitalBlocks int64
	BufferBytes   int64
}

// Add accumulates o into v.
func (v *Inventory) Add(o Inventory) {
	v.DACs += o.DACs
	v.ADCs += o.ADCs
	v.SAs += o.SAs
	v.Cells += o.Cells
	v.DriverRows += o.DriverRows
	v.Crossbars += o.Crossbars
	v.DigitalBlocks += o.DigitalBlocks
	v.BufferBytes += o.BufferBytes
}

// Breakdown groups energy (pJ) or area (µm²) by component class, the
// grouping of the paper's Fig. 1.
type Breakdown struct {
	DAC     float64
	ADC     float64
	RRAM    float64
	SA      float64
	Digital float64
	Buffer  float64
	Driver  float64
	DRAM    float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.DAC + b.ADC + b.RRAM + b.SA + b.Digital + b.Buffer + b.Driver + b.DRAM
}

// Other groups everything that is neither DAC, ADC nor RRAM — Fig. 1's
// fourth bar segment.
func (b Breakdown) Other() float64 {
	return b.SA + b.Digital + b.Buffer + b.Driver + b.DRAM
}

// InterfaceFraction is the DAC+ADC share of the total — the paper's
// ">98% of area and power" observation.
func (b Breakdown) InterfaceFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.DAC + b.ADC) / t
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.DAC += o.DAC
	b.ADC += o.ADC
	b.RRAM += o.RRAM
	b.SA += o.SA
	b.Digital += o.Digital
	b.Buffer += o.Buffer
	b.Driver += o.Driver
	b.DRAM += o.DRAM
}

// Energy converts per-picture usage counts to a pJ breakdown.
func (l Library) Energy(c Counts) Breakdown {
	return Breakdown{
		DAC:     float64(c.DACConversions) * l.DACEnergyPJ,
		ADC:     float64(c.ADCConversions) * l.ADCEnergyPJ,
		SA:      float64(c.SAEvaluations) * l.SAEnergyPJ,
		RRAM:    float64(c.CellReads) * l.CellReadEnergyPJ,
		Driver:  float64(c.RowDrives) * l.DriverEnergyPJ,
		Digital: float64(c.Adds)*l.AddEnergyPJ + float64(c.Shifts)*l.ShiftEnergyPJ + float64(c.Subs)*l.SubEnergyPJ + float64(c.Popcounts)*l.PopcountEnergyPJ,
		Buffer:  float64(c.BufferBytes) * l.BufferEnergyPJPerByte,
		DRAM:    float64(c.DRAMBytes) * l.DRAMEnergyPJPerByte,
	}
}

// Area converts a module inventory to a µm² breakdown.
func (l Library) Area(v Inventory) Breakdown {
	return Breakdown{
		DAC:     float64(v.DACs) * l.DACAreaUM2,
		ADC:     float64(v.ADCs) * l.ADCAreaUM2,
		SA:      float64(v.SAs) * l.SAAreaUM2,
		RRAM:    float64(v.Cells) * l.CellAreaUM2,
		Driver:  float64(v.DriverRows) * l.DriverAreaUM2,
		Digital: float64(v.DigitalBlocks) * l.DigitalBlockAreaUM2,
		Buffer:  float64(v.BufferBytes) * l.BufferAreaUM2PerByte,
	}
}

// MicroJoules converts a pJ energy breakdown total to µJ.
func MicroJoules(b Breakdown) float64 { return b.Total() * 1e-6 }

// SquareMM converts a µm² area breakdown total to mm².
func SquareMM(b Breakdown) float64 { return b.Total() * 1e-6 }

// GOPsPerJoule returns giga-operations per joule for ops operations at
// the given per-picture energy breakdown.
func GOPsPerJoule(ops int64, energy Breakdown) float64 {
	pj := energy.Total()
	if pj == 0 {
		return 0
	}
	// ops / (pJ·1e−12 J) / 1e9 = ops·1000/pJ.
	return float64(ops) * 1000 / pj
}
