package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"sort"

	"sei/internal/homog"
	"sei/internal/nn"
	"sei/internal/par"
	"sei/internal/quant"
	"sei/internal/seicore"
	"sei/internal/tensor"
)

// Table4Column is the splitting study at one maximum crossbar size.
type Table4Column struct {
	MaxCrossbar int
	// Original and Quantization repeat the Table-3 reference points.
	Original     float64
	Quantization float64
	// RandomMin/RandomMax bound the error over sampled random row
	// orders with static split thresholds (paper: 3.90–45.89% at 512).
	RandomMin, RandomMax float64
	RandomOrdersSampled  int
	// Clustered is the error when rows are sorted by row sum before
	// splitting — the worst-case arrangement the paper's random-order
	// experiment brushes against. Our trained networks have larger
	// decision margins than the paper's Caffe models, so uniformly
	// random orders rarely reach the catastrophic tail; the clustered
	// order exhibits the failure mode deterministically.
	Clustered float64
	// Homogenized is the error with GA-homogenized orders and static
	// thresholds; DynamicThreshold adds the calibrated input-dynamic
	// compensation.
	Homogenized      float64
	DynamicThreshold float64
	// HomogReduction is the Equ.-10 distance reduction of the split
	// conv stage(s) vs natural order (paper: 80–90%).
	HomogReduction float64
	// SplitStages records which conv stages split and into how many
	// blocks.
	SplitStages map[int]int
}

// Table4Result reproduces Table 4 for one network.
type Table4Result struct {
	NetworkID int
	Columns   []Table4Column
}

// splitConvStages returns the conv stages (index ≥ 1) that need
// splitting at the given crossbar size, with their block counts.
func splitConvStages(q *quant.QuantizedNet, maxSize int, mode seicore.SignedMode) map[int]int {
	out := map[int]int{}
	for l := 1; l < len(q.Convs); l++ {
		n := q.Convs[l].FanIn()
		if k := seicore.BlocksFor(n, mode.CellsPerWeight(), maxSize); k > 1 {
			out[l] = k
		}
	}
	return out
}

// homogenizedOrders computes GA orders for every split conv stage and
// the aggregate distance reduction.
func homogenizedOrders(c *Context, q *quant.QuantizedNet, maxSize int, mode seicore.SignedMode) (orders [][]int, reduction float64) {
	split := splitConvStages(q, maxSize, mode)
	orders = make([][]int, len(q.Convs))
	var reds []float64
	for l, k := range split {
		cfg := homog.DefaultGAConfig()
		cfg.Seed = c.Cfg.Seed + int64(l)
		res, err := homog.Homogenize(q.ConvMatrix(l), k, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: homogenizing stage %d: %v", l, err))
		}
		orders[l] = res.Order
		reds = append(reds, res.Reduction())
		c.logf("experiments: homogenized stage %d (K=%d): distance %.4f -> %.4f (%.1f%% reduction)\n",
			l, k, res.NaturalDistance, res.Distance, 100*res.Reduction())
	}
	for _, r := range reds {
		reduction += r
	}
	if len(reds) > 0 {
		reduction /= float64(len(reds))
	}
	return orders, reduction
}

// HomogenizedOrdersFor computes GA split orders for every conv stage
// of q that splits at the given crossbar size, without needing a full
// experiment context — the facade's pipeline uses it.
func HomogenizedOrdersFor(q *quant.QuantizedNet, maxSize int, seed int64) [][]int {
	split := splitConvStages(q, maxSize, seicore.ModeBipolar)
	orders := make([][]int, len(q.Convs))
	for l, k := range split {
		cfg := homog.DefaultGAConfig()
		cfg.Seed = seed + int64(l)
		res, err := homog.Homogenize(q.ConvMatrix(l), k, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: homogenizing stage %d: %v", l, err))
		}
		orders[l] = res.Order
	}
	return orders
}

// sortedOrder returns the matrix's rows sorted by decreasing row sum —
// the clustered arrangement that concentrates weight mass into one
// block.
func sortedOrder(w *tensor.Tensor) []int {
	n, m := w.Dim(0), w.Dim(1)
	sums := make([]float64, n)
	for r := 0; r < n; r++ {
		for _, v := range w.Data()[r*m : (r+1)*m] {
			sums[r] += v
		}
	}
	order := seicore.NaturalOrder(n)
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })
	return order
}

// RandomOrdersFor draws a seeded random permutation for every conv
// stage of q that splits at the given crossbar size — the Table-4
// "Random Order Splitting" condition, exposed for the facade.
func RandomOrdersFor(q *quant.QuantizedNet, maxSize int, seed int64) [][]int {
	split := splitConvStages(q, maxSize, seicore.ModeBipolar)
	rng := rand.New(rand.NewSource(seed))
	orders := make([][]int, len(q.Convs))
	for l := range split {
		orders[l] = homog.RandomOrder(q.Convs[l].FanIn(), rng)
	}
	return orders
}

// seiError builds an SEI design with the given orders and dynamic
// setting and evaluates it on the test set. workers bounds the build's
// calibration and the evaluation; callers fanning out over designs
// pass 1 and parallelize the outer loop instead.
func seiError(c *Context, q *quant.QuantizedNet, maxSize int, orders [][]int, dynamic bool, seed int64, workers int) float64 {
	cfg := seicore.DefaultSEIBuildConfig()
	cfg.Layer.MaxCrossbar = maxSize
	cfg.Orders = orders
	cfg.DynamicThreshold = dynamic
	cfg.CalibImages = c.Cfg.CalibImages
	cfg.Workers = workers
	cfg.Obs = c.Cfg.Obs
	var train = c.Train
	if !dynamic {
		train = nil
	}
	design, err := seicore.BuildSEI(q, train, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(fmt.Sprintf("experiments: building SEI design: %v", err))
	}
	return nn.ClassifierErrorRateObs(c.Cfg.Obs, design, c.Test, workers)
}

// Table4 runs the splitting study (paper: Network 1 at 512 and 256).
func Table4(c *Context, networkID int, sizes []int) *Table4Result {
	q := c.QuantizedCalibrated(networkID)
	sp := c.Cfg.Obs.StartSpan("evaluate/table4")
	defer sp.End()
	res := &Table4Result{NetworkID: networkID}
	for _, size := range sizes {
		col := Table4Column{
			MaxCrossbar:  size,
			Original:     c.FloatError(networkID),
			Quantization: c.QuantCalibratedError(networkID),
			SplitStages:  splitConvStages(q, size, seicore.ModeBipolar),
		}

		// Random order sampling with static thresholds. The orders are
		// drawn serially from one stream (identical to the serial run);
		// the independent design evaluations then fan out, each on the
		// serial inner path, and min/max fold over the indexed results.
		rng := rand.New(rand.NewSource(c.Cfg.Seed + int64(size)))
		col.RandomMin, col.RandomMax = 1.0, 0.0
		col.RandomOrdersSampled = c.Cfg.RandomOrders
		randOrders := make([][][]int, c.Cfg.RandomOrders)
		for r := range randOrders {
			orders := make([][]int, len(q.Convs))
			for l := range col.SplitStages {
				orders[l] = homog.RandomOrder(q.Convs[l].FanIn(), rng)
			}
			randOrders[r] = orders
		}
		randErr := make([]float64, c.Cfg.RandomOrders)
		var done atomic.Int64
		par.ForEachChunkRec(c.Cfg.Obs, c.Cfg.Workers, c.Cfg.RandomOrders, 1, func(ch par.Chunk) {
			r := ch.Lo
			randErr[r] = seiError(c, q, size, randOrders[r], false, c.Cfg.Seed+int64(r), 1)
			c.logf("experiments: table4 net%d @%d random order %d/%d: err %.4f\n",
				networkID, size, r+1, c.Cfg.RandomOrders, randErr[r])
			c.Cfg.Obs.Progress(fmt.Sprintf("table4@%d random orders", size),
				int(done.Add(1)), c.Cfg.RandomOrders)
		})
		for _, e := range randErr {
			if e < col.RandomMin {
				col.RandomMin = e
			}
			if e > col.RandomMax {
				col.RandomMax = e
			}
		}

		// Clustered (sorted-by-row-sum) order: the deterministic bad case.
		clustered := make([][]int, len(q.Convs))
		for l := range col.SplitStages {
			clustered[l] = sortedOrder(q.ConvMatrix(l))
		}
		col.Clustered = seiError(c, q, size, clustered, false, c.Cfg.Seed+500, c.Cfg.Workers)

		orders, reduction := homogenizedOrders(c, q, size, seicore.ModeBipolar)
		col.HomogReduction = reduction
		col.Homogenized = seiError(c, q, size, orders, false, c.Cfg.Seed+1000, c.Cfg.Workers)
		col.DynamicThreshold = seiError(c, q, size, orders, true, c.Cfg.Seed+1000, c.Cfg.Workers)
		c.logf("experiments: table4 net%d @%d: homog %.4f dynamic %.4f\n",
			networkID, size, col.Homogenized, col.DynamicThreshold)
		res.Columns = append(res.Columns, col)
	}
	return res
}

// Print renders the result like the paper's Table 4.
func (r *Table4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 4: error rate of the proposed methods on Network %d\n", r.NetworkID)
	fmt.Fprintf(w, "  %-26s", "Max Crossbar Size")
	for _, col := range r.Columns {
		fmt.Fprintf(w, " %14d", col.MaxCrossbar)
	}
	fmt.Fprintln(w)
	line := func(name string, get func(Table4Column) string) {
		fmt.Fprintf(w, "  %-26s", name)
		for _, col := range r.Columns {
			fmt.Fprintf(w, " %14s", get(col))
		}
		fmt.Fprintln(w)
	}
	pct := func(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
	line("Original CNN", func(c Table4Column) string { return pct(c.Original) })
	line("Quantization", func(c Table4Column) string { return pct(c.Quantization) })
	line("Random Order Splitting", func(c Table4Column) string {
		return fmt.Sprintf("%.2f-%.2f%%", 100*c.RandomMin, 100*c.RandomMax)
	})
	line("Clustered Order Splitting", func(c Table4Column) string { return pct(c.Clustered) })
	line("Matrix Homogenization", func(c Table4Column) string { return pct(c.Homogenized) })
	line("Dynamic Threshold", func(c Table4Column) string { return pct(c.DynamicThreshold) })
	line("Homog distance reduction", func(c Table4Column) string {
		return fmt.Sprintf("%.0f%%", 100*c.HomogReduction)
	})
}
