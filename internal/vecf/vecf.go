// Package vecf provides the small dense float64 kernels under the
// bit-sliced batch path's stage 0: a lane-major multiply-accumulate
// and a lane-major threshold compare, each processing the 64 lanes of
// one nn.SlicedGroupSize batch per call.
//
// Exactness contract: every kernel computes, per element, exactly
//
//	acc[i] = acc[i] + (w * x[i])
//
// with both the multiply and the add rounded separately (never fused
// into an FMA), and compares with the same semantics as the Go `>`
// operator (NaN compares false). The amd64 AVX2 implementations use
// VMULPD/VADDPD/VCMPPD, which round each element identically to the
// scalar MULSD/ADDSD/UCOMISD sequence, so results are bit-identical
// to the pure-Go loops on every input — the property the SEI sliced
// path's bit-identity contract rests on (see seicore/sliced.go).
package vecf

import "math/bits"

// Lanes is the fixed lane width of every kernel in this package — the
// word width of the bit-sliced batch path.
const Lanes = 64

// MulAccLanes accumulates acc[c*Lanes+i] += w[c] * x[i] for every
// weight c and lane i, with strict per-element mul-then-add rounding.
// x holds one value per lane; acc holds len(w) lane-major segments.
// acc and x must not overlap. Panics when x is shorter than Lanes or
// acc shorter than len(w)*Lanes.
func MulAccLanes(acc, x []float64, w []float64) {
	if len(w) == 0 {
		return
	}
	x = x[:Lanes]
	acc = acc[:len(w)*Lanes]
	mulAccLanes(acc, x, w)
}

// GtMask64 returns the lane mask of x[i] > thr over exactly Lanes
// values: bit i is set when lane i exceeds the threshold. NaN lanes
// compare false, as with the Go `>` operator. Panics when x is shorter
// than Lanes.
func GtMask64(x []float64, thr float64) uint64 {
	return gtMask64(x[:Lanes], thr)
}

// ConvWin4 fuses one four-filter convolution window over 64 lanes.
// For each filter c in [0,4) it accumulates, over the set bits r of
// rowMask in ascending order,
//
//	acc_c[i] += w[r*4+c] * x[off[r]+i]
//
// with strict per-element mul-then-add rounding, then writes
// masks[c] = lane mask of acc_c[i] > thr (NaN compares false). The
// accumulators start at +0 and, in the AVX2 implementation, never
// leave registers — the kernel replaces a zero/accumulate/compare
// round trip through a 4·Lanes scratch buffer.
//
// off holds element offsets into x, one per window row; rows whose
// rowMask bit is clear are skipped entirely and their off entries are
// not read. Panics when a set row's x span or weight row is out of
// bounds.
func ConvWin4(x, w []float64, off []int64, rowMask uint64, thr float64, masks *[4]uint64) {
	if rowMask == 0 {
		var m uint64
		if 0.0 > thr { // +0 accumulators can still fire a negative threshold
			m = ^uint64(0)
		}
		masks[0], masks[1], masks[2], masks[3] = m, m, m, m
		return
	}
	hi := 63 - bits.LeadingZeros64(rowMask)
	_ = w[hi*4+3]
	for t := rowMask; t != 0; t &= t - 1 {
		_ = x[off[bits.TrailingZeros64(t)]+Lanes-1]
	}
	convWin4(x, w, off, rowMask, thr, masks)
}

// AddRowLanes adds one row of values into each set lane's lane-major
// accumulator segment: for every set bit lane of laneWord,
//
//	acc[lane*m+c] += row[c]  for c in [0,m), m = len(row)
//
// Each element is a single IEEE add with the same operands as the
// scalar loop, so results are bit-identical on every input. Lanes are
// visited in ascending order (their accumulators are disjoint, so the
// order is unobservable). Panics when acc is shorter than
// (highest set lane + 1)*m.
func AddRowLanes(acc, row []float64, laneWord uint64) {
	if laneWord == 0 || len(row) == 0 {
		return
	}
	hi := 63 - bits.LeadingZeros64(laneWord)
	_ = acc[(hi+1)*len(row)-1]
	addRowLanes(acc, row, laneWord)
}

// addRowLanesGeneric is the portable row-add kernel.
func addRowLanesGeneric(acc, row []float64, laneWord uint64) {
	m := len(row)
	for t := laneWord; t != 0; t &= t - 1 {
		lane := bits.TrailingZeros64(t)
		a := acc[lane*m : lane*m+m]
		for c, v := range row {
			a[c] += v
		}
	}
}

// convWin4Generic is the portable fused-window kernel.
func convWin4Generic(x, w []float64, off []int64, rowMask uint64, thr float64, masks *[4]uint64) {
	var acc [4 * Lanes]float64
	for t := rowMask; t != 0; t &= t - 1 {
		r := bits.TrailingZeros64(t)
		xr := x[off[r] : off[r]+Lanes]
		for c := 0; c < 4; c++ {
			wc := w[r*4+c]
			a := acc[c*Lanes : c*Lanes+Lanes]
			for i, v := range xr {
				a[i] += wc * v
			}
		}
	}
	for c := 0; c < 4; c++ {
		masks[c] = gtMask64Generic(acc[c*Lanes:c*Lanes+Lanes], thr)
	}
}

// mulAccLanesGeneric is the portable kernel; the amd64 build replaces
// it at dispatch time, and the equivalence tests pin the two
// bit-identical.
func mulAccLanesGeneric(acc, x []float64, w []float64) {
	for c, wc := range w {
		a := acc[c*Lanes : c*Lanes+Lanes]
		for i, v := range x {
			a[i] += wc * v
		}
	}
}

// gtMask64Generic is the portable compare kernel.
func gtMask64Generic(x []float64, thr float64) uint64 {
	var m uint64
	for i, v := range x {
		if v > thr {
			m |= 1 << uint(i)
		}
	}
	return m
}
