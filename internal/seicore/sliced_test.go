package seicore

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// evalSliced classifies imgs with one PredictBatchSliced call under
// full instrumentation and returns the labels plus every counter
// total. Counter comparability with evalPerImage holds because both
// drive the design directly — no engine scheduling counters involved.
func evalSliced(t *testing.T, d *SEIDesign, imgs []*tensor.Tensor) ([]int, map[string]int64) {
	t.Helper()
	rec := obs.New()
	d.Instrument(rec)
	d.Q.Instrument(rec)
	defer func() {
		d.Instrument(nil)
		d.Q.Instrument(nil)
	}()
	out := make([]nn.PredictResult, len(imgs))
	if !d.PredictBatchSliced(imgs, out) {
		t.Fatalf("PredictBatchSliced refused %d eligible images", len(imgs))
	}
	labels := make([]int, len(imgs))
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("image %d: %v", i, r.Err)
		}
		labels[i] = r.Label
	}
	return labels, rec.CounterValues()
}

// evalPerImage classifies imgs one per-image fast-path Predict at a
// time under full instrumentation — the sliced path's bit-identity
// reference.
func evalPerImage(t *testing.T, d *SEIDesign, imgs []*tensor.Tensor) ([]int, map[string]int64) {
	t.Helper()
	rec := obs.New()
	d.Instrument(rec)
	d.Q.Instrument(rec)
	defer func() {
		d.Instrument(nil)
		d.Q.Instrument(nil)
	}()
	labels := make([]int, len(imgs))
	for i, img := range imgs {
		labels[i] = d.Predict(img)
	}
	return labels, rec.CounterValues()
}

// TestSlicedMatchesPerImage pins the tentpole contract on every design
// shape the per-image fast path is tested on — contiguous and permuted
// splits, unipolar dynamic columns, calibrated dynamic thresholds —
// and on full, partial and single-lane batches: labels AND
// hardware-counter totals are bit-identical to per-image Predict.
func TestSlicedMatchesPerImage(t *testing.T) {
	f := getFixture(t)
	perm := rand.New(rand.NewSource(11)).Perm(36)
	cases := []struct {
		name string
		cfg  func() SEIBuildConfig
	}{
		{"default-bipolar", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"split-contiguous", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16 // forces conv stage 1 and FC to split
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"split-permuted-order", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.Orders = [][]int{nil, perm} // non-contiguous blocks
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"unipolar-dynamic", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.Mode = ModeUnipolarDynamic
			cfg.DynamicThreshold = false
			return cfg
		}},
		{"calibrated-split", func() SEIBuildConfig {
			cfg := DefaultSEIBuildConfig()
			cfg.Layer.MaxCrossbar = 16
			cfg.CalibImages = 10
			cfg.CalibPositions = 8
			return cfg
		}},
	}
	imgs := f.test.Images
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := BuildSEI(f.q, f.train, tc.cfg(), rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			if !d.SlicedBatchEligible() {
				t.Fatalf("ideal-analog design is not sliced-eligible")
			}
			for _, lanes := range []int{1, 2, 63, 64} {
				batch := imgs[:lanes]
				sLabels, sCounters := evalSliced(t, d, batch)
				pLabels, pCounters := evalPerImage(t, d, batch)
				if !reflect.DeepEqual(sLabels, pLabels) {
					t.Errorf("lanes=%d: sliced labels diverge from per-image fast path", lanes)
				}
				if !reflect.DeepEqual(sCounters, pCounters) {
					t.Errorf("lanes=%d: counters diverge:\n sliced    %v\n per-image %v", lanes, sCounters, pCounters)
				}
			}
		})
	}
}

// TestSlicedRefusals pins every condition under which the sliced
// kernel must hand the batch back: ineligible designs, empty and
// oversized batches, geometry mismatches, and the SetSlicedPath /
// SetFastPath toggles.
func TestSlicedRefusals(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	imgs := f.test.Images[:4]
	out := make([]nn.PredictResult, 128)

	if d.PredictBatchSliced(nil, out) {
		t.Error("empty batch accepted")
	}
	big := make([]*tensor.Tensor, nn.SlicedGroupSize+1)
	for i := range big {
		big[i] = imgs[0]
	}
	if d.PredictBatchSliced(big, out) {
		t.Error("oversized batch accepted")
	}
	if d.PredictBatchSliced(imgs, out[:2]) {
		t.Error("short result slice accepted")
	}
	bad := []*tensor.Tensor{imgs[0], tensor.New(1, 3, 3), imgs[1]}
	if d.PredictBatchSliced(bad, out) {
		t.Error("geometry-mismatched batch accepted")
	}
	if d.PredictBatchSliced([]*tensor.Tensor{imgs[0], nil}, out) {
		t.Error("nil image accepted")
	}

	d.SetSlicedPath(false)
	if d.SlicedBatchEligible() || d.PredictBatchSliced(imgs, out) {
		t.Error("SetSlicedPath(false) did not disable the sliced path")
	}
	d.SetSlicedPath(true)
	d.SetFastPath(false)
	if d.SlicedBatchEligible() {
		t.Error("SetFastPath(false) left the design sliced-eligible")
	}
	d.SetFastPath(true)
	if !d.PredictBatchSliced(imgs, out) {
		t.Error("re-enabled design refused a valid batch")
	}

	noisy := DefaultSEIBuildConfig()
	noisy.DynamicThreshold = false
	noisy.Layer.Model.ReadNoiseSigma = 0.05
	nd, err := BuildSEI(f.q, nil, noisy, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if nd.SlicedBatchEligible() || nd.PredictBatchSliced(imgs, out) {
		t.Error("noisy design is sliced-eligible")
	}
}

// TestSlicedZeroAllocs pins the arena design: once the scratch pool is
// warm, a full 64-image sliced pass performs zero heap allocations.
func TestSlicedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is lossy under -race; allocation counts are not meaningful")
	}
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	imgs := f.test.Images[:nn.SlicedGroupSize]
	out := make([]nn.PredictResult, len(imgs))
	if !d.PredictBatchSliced(imgs, out) { // warm the pool
		t.Fatal("sliced pass refused")
	}
	if avg := testing.AllocsPerRun(50, func() { d.PredictBatchSliced(imgs, out) }); avg != 0 {
		t.Errorf("sliced batch allocates %.1f objects per pass, want 0", avg)
	}
}

// TestSlicedConcurrent hammers one shared design from several
// goroutines — the serving shape — and checks every result against the
// serial sliced pass. Run under -race in CI.
func TestSlicedConcurrent(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	imgs := f.test.Images[:nn.SlicedGroupSize]
	want, _ := evalSliced(t, d, imgs)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]nn.PredictResult, len(imgs))
			for iter := 0; iter < 5; iter++ {
				if !d.PredictBatchSliced(imgs, out) {
					errs <- "refused"
					return
				}
				for i, r := range out {
					if r.Label != want[i] {
						errs <- "label mismatch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent sliced pass: %s", e)
	}
}

// TestSlicedSurvivesSaveLoad pins that a snapshot round-trip
// re-derives sliced eligibility and classifies identically.
func TestSlicedSurvivesSaveLoad(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultSEIBuildConfig()
	cfg.Layer.MaxCrossbar = 16
	cfg.DynamicThreshold = false
	d, err := BuildSEI(f.q, nil, cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesign(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.SlicedBatchEligible() {
		t.Fatalf("loaded ideal-analog design is not sliced-eligible")
	}
	imgs := f.test.Images[:nn.SlicedGroupSize]
	a, _ := evalSliced(t, d, imgs)
	b, _ := evalSliced(t, loaded, imgs)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("loaded design's sliced labels diverge from the original")
	}
}
