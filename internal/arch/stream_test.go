package arch

import (
	"testing"

	"sei/internal/seicore"
)

func TestStreamMakespanBounds(t *testing.T) {
	for id := 1; id <= 3; id++ {
		geoms := netGeometry(t, id)
		m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
		cfg := DefaultTimingConfig()
		closed, err := m.Timing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := m.StreamMakespan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Wavefront overlap can only help: makespan ≤ sequential latency.
		if stream.MakespanNS > closed.LatencyNS+1e-9 {
			t.Fatalf("network %d: stream makespan %.1f above sequential %.1f",
				id, stream.MakespanNS, closed.LatencyNS)
		}
		// And it cannot beat the slowest layer's own work.
		var worstBusy float64
		for _, l := range stream.Layers {
			if l.BusyNS > worstBusy {
				worstBusy = l.BusyNS
			}
		}
		if stream.MakespanNS < worstBusy-1e-9 {
			t.Fatalf("network %d: makespan %.1f below bottleneck busy %.1f",
				id, stream.MakespanNS, worstBusy)
		}
		t.Logf("network %d: sequential %.1f ns, wavefront %.1f ns (%.2fx)",
			id, closed.LatencyNS, stream.MakespanNS, closed.LatencyNS/stream.MakespanNS)
	}
}

func TestStreamAccounting(t *testing.T) {
	geoms := netGeometry(t, 2)
	m, _ := Map(geoms, DefaultConfig(seicore.StructDACADC))
	stream, err := m.StreamMakespan(DefaultTimingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.Layers) != 3 {
		t.Fatalf("got %d layers", len(stream.Layers))
	}
	// Conv1 has all inputs at t=0: no stalls, busy = 26 rows × 26 waves.
	c1 := stream.Layers[0]
	if c1.StallNS != 0 {
		t.Fatalf("conv1 stalled %.1f ns with inputs ready", c1.StallNS)
	}
	wantBusy := float64(26) * float64(26) * 11 // rows × waves/row × evalNS
	if c1.BusyNS != wantBusy {
		t.Fatalf("conv1 busy %.1f, want %.1f", c1.BusyNS, wantBusy)
	}
	// Every layer's finish is ≥ its busy time and the FC finishes last.
	for i, l := range stream.Layers {
		if l.FinishNS < l.BusyNS {
			t.Fatalf("layer %d finish %.1f < busy %.1f", i, l.FinishNS, l.BusyNS)
		}
	}
	// The classification is ready at the FC finish; the makespan also
	// covers trailing rows a ragged pool discards, so it is ≥ that.
	if stream.MakespanNS < stream.Layers[2].FinishNS {
		t.Fatal("makespan below the FC finish time")
	}
}

func TestStreamReplicasSpeedup(t *testing.T) {
	geoms := netGeometry(t, 1)
	m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	cfg := DefaultTimingConfig()
	one, err := m.StreamMakespan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replicas = 8
	eight, err := m.StreamMakespan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eight.MakespanNS >= one.MakespanNS {
		t.Fatalf("8 replicas makespan %.1f not below 1 replica %.1f",
			eight.MakespanNS, one.MakespanNS)
	}
}

func TestStreamDownstreamStalls(t *testing.T) {
	// Conv2 consumes pooled conv1 rows; it must stall at least once
	// waiting for its first full window.
	geoms := netGeometry(t, 1)
	m, _ := Map(geoms, DefaultConfig(seicore.StructSEI))
	stream, err := m.StreamMakespan(DefaultTimingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stream.Layers[1].StallNS <= 0 {
		t.Fatal("conv2 never stalled; pipeline dependency not modeled")
	}
}
