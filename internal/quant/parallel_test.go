package quant

import (
	"testing"

	"sei/internal/mnist"
)

// searchedNet returns a freshly extracted+searched quantized net for
// the given worker count, from identical starting weights.
func searchedNet(t *testing.T, train *mnist.Dataset, workers int) (*QuantizedNet, *SearchReport) {
	t.Helper()
	net := trainedNet2(t)
	q, err := Extract(net, []int{1, 28, 28})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSearchConfig()
	cfg.Samples = 200
	cfg.Workers = workers
	report, err := SearchThresholds(q, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q, report
}

func TestSearchThresholdsWorkerCountInvariant(t *testing.T) {
	train := mnist.Synthetic(300, 5)
	refQ, refR := searchedNet(t, train, 1)
	for _, workers := range []int{2, 8, 0} {
		q, r := searchedNet(t, train, workers)
		for l := range refQ.Thresholds {
			if q.Thresholds[l] != refQ.Thresholds[l] {
				t.Fatalf("workers=%d: threshold[%d] = %v, serial %v",
					workers, l, q.Thresholds[l], refQ.Thresholds[l])
			}
			if r.Layers[l].MaxOutput != refR.Layers[l].MaxOutput {
				t.Fatalf("workers=%d: maxOut[%d] = %v, serial %v",
					workers, l, r.Layers[l].MaxOutput, refR.Layers[l].MaxOutput)
			}
			if r.Layers[l].Accuracy != refR.Layers[l].Accuracy {
				t.Fatalf("workers=%d: accuracy[%d] = %v, serial %v",
					workers, l, r.Layers[l].Accuracy, refR.Layers[l].Accuracy)
			}
		}
		// The re-scaled weights must be bit-identical too.
		for l := range refQ.Convs {
			a, b := refQ.Convs[l].W.Data(), q.Convs[l].W.Data()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: conv %d weight %d differs", workers, l, i)
				}
			}
		}
	}
}

func TestErrorRateWorkersInvariant(t *testing.T) {
	train := mnist.Synthetic(300, 5)
	test := mnist.Synthetic(200, 6)
	q, _ := searchedNet(t, train, 0)
	ref := q.ErrorRateWorkers(test, 1)
	for _, workers := range []int{2, 8, 0} {
		if got := q.ErrorRateWorkers(test, workers); got != ref {
			t.Fatalf("workers=%d: error %.6f != serial %.6f", workers, got, ref)
		}
	}
	if got := q.ErrorRate(test); got != ref {
		t.Fatalf("ErrorRate %.6f != serial %.6f", got, ref)
	}
}

func TestSearchRejectsNegativeWorkers(t *testing.T) {
	net := trainedNet2(t)
	q, err := Extract(net, []int{1, 28, 28})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSearchConfig()
	cfg.Workers = -2
	if _, err := SearchThresholds(q, mnist.Synthetic(10, 1), cfg); err == nil {
		t.Fatal("SearchThresholds accepted negative Workers")
	}
	rcfg := DefaultRefineConfig()
	rcfg.Workers = -1
	if _, err := RefineThresholds(q, mnist.Synthetic(10, 1), rcfg); err == nil {
		t.Fatal("RefineThresholds accepted negative Workers")
	}
	ccfg := DefaultRecalibrateConfig()
	ccfg.Workers = -1
	if err := RecalibrateFC(q, mnist.Synthetic(10, 1), ccfg); err == nil {
		t.Fatal("RecalibrateFC accepted negative Workers")
	}
}
