package obs

import (
	"bufio"
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// quantHist builds a histogram with bounds {1,2,4,8} and the given
// per-bucket counts (last entry = +Inf bucket) by observing bucket
// midpoints.
func quantHist(t *testing.T, counts []int64) *Histogram {
	t.Helper()
	r := New()
	h := r.Histogram("q", []float64{1, 2, 4, 8})
	values := []float64{0.5, 1.5, 3, 6, 16} // one representative per bucket
	for i, c := range counts {
		for j := int64(0); j < c; j++ {
			h.Observe(values[i])
		}
	}
	return h
}

func TestQuantileInterpolation(t *testing.T) {
	// 10 observations uniformly in (1,2]: quantiles interpolate
	// linearly across that bucket.
	h := quantHist(t, []int64{0, 10, 0, 0, 0})
	cases := []struct{ q, want float64 }{
		{0, 1},     // lower edge of the only populated bucket
		{0.5, 1.5}, // midpoint
		{0.99, 1.99},
		{1, 2}, // upper bound
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 50 in (0,1], 30 in (1,2], 15 in (2,4], 5 in (4,8].
	h := quantHist(t, []int64{50, 30, 15, 5, 0})
	cases := []struct{ q, want float64 }{
		{0.25, 0.5},              // rank 25 of 50 in the first bucket (lo 0)
		{0.5, 1},                 // rank 50 = exactly the first bucket's upper bound
		{0.8, 2},                 // rank 80 = cumulative edge of second bucket
		{0.9, 2 + 2*(10.0/15.0)}, // rank 90, 10 into the 15-count (2,4] bucket
		{0.99, 4 + 4*(4.0/5.0)},  // rank 99, 4 into the 5-count (4,8] bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileInfBucketClampsToLargestBound(t *testing.T) {
	h := quantHist(t, []int64{0, 0, 0, 0, 7})
	if got := h.Quantile(0.99); got != 8 {
		t.Errorf("Quantile in +Inf bucket = %g, want clamp to 8", got)
	}
}

func TestQuantileEmptyAndInvalid(t *testing.T) {
	h := quantHist(t, []int64{0, 0, 0, 0, 0})
	for _, q := range []float64{0.5, -0.1, 1.1, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%g) on empty/invalid = %g, want NaN", q, got)
		}
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram Quantile should be NaN")
	}
}

func TestQuantileSkipsEmptyLeadingBuckets(t *testing.T) {
	h := quantHist(t, []int64{0, 0, 4, 0, 0})
	if got := h.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %g, want lower edge 2 of first populated bucket", got)
	}
}

func TestReportQuantileRoundTrips(t *testing.T) {
	r := New()
	h := r.Histogram("lat", LatencyBounds())
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 + float64(i%97)*0.0001)
	}
	hr := r.Report("").Histograms["lat"]
	for _, q := range []float64{0.5, 0.99, 0.999} {
		live, snap := h.Quantile(q), hr.Quantile(q)
		if live != snap {
			t.Errorf("q=%g: live %g != snapshot %g", q, live, snap)
		}
		if snap <= 0 || snap > 60 {
			t.Errorf("q=%g: quantile %g outside latency range", q, snap)
		}
	}
}

func TestLatencyBoundsAscendingAndCoverServingRange(t *testing.T) {
	b := LatencyBounds()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	if b[0] > 100e-6 {
		t.Errorf("first bound %g too coarse for µs-scale latencies", b[0])
	}
	if last := b[len(b)-1]; last < 30 {
		t.Errorf("last bound %g does not cover timeout-scale latencies", last)
	}
}

// TestWritePrometheusHistogramIsStandardCumulative pins the standard
// exposition shape /metrics scrapers rely on: monotone non-decreasing
// _bucket{le} series ending in an le="+Inf" bucket equal to _count,
// plus _sum and _count lines.
func TestWritePrometheusHistogramIsStandardCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 2} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	var (
		buckets []int64
		infSeen bool
		sumSeen bool
		count   int64 = -1
		lastCum int64
	)
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "sei_lat_bucket{"):
			fields := strings.Fields(line)
			n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if n < lastCum {
				t.Errorf("bucket series not cumulative: %q after %d", line, lastCum)
			}
			lastCum = n
			buckets = append(buckets, n)
			if strings.Contains(line, `le="+Inf"`) {
				infSeen = true
			}
		case strings.HasPrefix(line, "sei_lat_sum"):
			sumSeen = true
		case strings.HasPrefix(line, "sei_lat_count"):
			fields := strings.Fields(line)
			n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("count value in %q: %v", line, err)
			}
			count = n
		}
	}
	if len(buckets) != 4 {
		t.Fatalf("emitted %d bucket lines, want 4 (3 bounds + +Inf)", len(buckets))
	}
	if !infSeen || !sumSeen {
		t.Fatalf("missing le=\"+Inf\" bucket (%v) or _sum line (%v)", infSeen, sumSeen)
	}
	if count != 5 || buckets[len(buckets)-1] != count {
		t.Errorf("count = %d, final cumulative bucket = %d, want both 5", count, buckets[len(buckets)-1])
	}
}
