package rram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sei/internal/tensor"
)

func TestTransferLinearDefault(t *testing.T) {
	m := DefaultDeviceModel()
	f := m.Transfer()
	for _, x := range []float64{0, 0.25, 0.5, 1} {
		if f(x) != x {
			t.Fatalf("linear transfer f(%v) = %v", x, f(x))
		}
	}
	if m.TransferGain() != 1 {
		t.Fatalf("linear gain %v, want 1", m.TransferGain())
	}
}

func TestTransferSinhShape(t *testing.T) {
	m := DefaultDeviceModel()
	m.IVNonlinearity = 2
	f := m.Transfer()
	if f(0) != 0 {
		t.Fatal("f(0) != 0")
	}
	// sinh is superlinear: f(1) > 1 and f is convex on [0,1].
	if f(1) <= 1 {
		t.Fatalf("f(1) = %v, want > 1", f(1))
	}
	if f(0.5) >= 0.5*f(1) {
		t.Fatalf("sinh transfer not convex: f(0.5)=%v, f(1)/2=%v", f(0.5), f(1)/2)
	}
	if math.Abs(f(1)-math.Sinh(2)/2) > 1e-12 {
		t.Fatalf("f(1) = %v, want sinh(2)/2", f(1))
	}
}

// Property: the sinh transfer converges to linear as the nonlinearity
// vanishes.
func TestTransferConvergesToLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := rng.Float64()
		m := DefaultDeviceModel()
		m.IVNonlinearity = 1e-4
		return math.Abs(m.Transfer()(x)-x) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the transfer is strictly increasing (a physical I-V curve).
func TestTransferMonotone(t *testing.T) {
	m := DefaultDeviceModel()
	m.IVNonlinearity = 3
	f := m.Transfer()
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		if f(x) <= prev {
			t.Fatalf("transfer not increasing at x=%v", x)
		}
		prev = f(x)
	}
}

func TestTransferCalibratedFixedPoints(t *testing.T) {
	m := DefaultDeviceModel()
	m.IVNonlinearity = 2.5
	f := m.TransferCalibrated()
	if f(0) != 0 || math.Abs(f(1)-1) > 1e-15 {
		t.Fatalf("calibrated transfer endpoints f(0)=%v f(1)=%v", f(0), f(1))
	}
	// Convexity: intermediate voltages under-contribute after full-swing
	// calibration.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		if f(x) >= x {
			t.Fatalf("calibrated f(%v) = %v, want < x", x, f(x))
		}
	}
	// Linear device: identity.
	lin := DefaultDeviceModel()
	if g := lin.TransferCalibrated(); g(0.37) != 0.37 {
		t.Fatal("linear calibrated transfer not identity")
	}
}

func TestValidateRejectsNegativeNonlinearity(t *testing.T) {
	m := DefaultDeviceModel()
	m.IVNonlinearity = -1
	if m.Validate() == nil {
		t.Fatal("accepted negative nonlinearity")
	}
}

func TestMVMNonlinearDistortsAnalogNotBinary(t *testing.T) {
	lin := IdealDeviceModel(4)
	nl := lin
	nl.IVNonlinearity = 2
	target := tensor.New(4, 1)
	for i := range target.Data() {
		target.Data()[i] = float64(i) / 4
	}
	rng := rand.New(rand.NewSource(1))
	cbLin, _ := NewCrossbar(4, 1, lin)
	cbLin.Program(target, rng)
	cbNL, _ := NewCrossbar(4, 1, nl)
	cbNL.Program(target, rng)

	mvm0 := func(cb *Crossbar, v []float64) float64 {
		out, err := cb.MVM(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out[0]
	}

	// Binary input: nonlinear result is exactly gain·linear.
	bin := []float64{1, 0, 1, 1}
	gain := nl.TransferGain()
	if math.Abs(mvm0(cbNL, bin)-gain*mvm0(cbLin, bin)) > 1e-15 {
		t.Fatal("binary input not uniformly scaled under nonlinearity")
	}

	// Analog input: the result is NOT a uniform scaling (distortion).
	ana := []float64{0.2, 0.9, 0.5, 0.1}
	ratio := mvm0(cbNL, ana) / mvm0(cbLin, ana)
	if math.Abs(ratio-gain) < 1e-6 {
		t.Fatalf("analog input scaled uniformly (ratio %v = gain %v); expected distortion", ratio, gain)
	}
}

// TestMVMNonlinearScratchReused pins that the transfer-curve input copy
// is kept in the crossbar's scratch slice: a steady-state nonlinear MVM
// allocates only its output slice.
func TestMVMNonlinearScratchReused(t *testing.T) {
	m := IdealDeviceModel(4)
	m.IVNonlinearity = 2
	cb, err := NewCrossbar(8, 4, m)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 0, 0.5, 1, 0, 0.25, 1, 0}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := cb.MVM(v, nil); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Errorf("nonlinear MVM allocates %.1f objects per call, want ≤ 1 (the output slice)", avg)
	}
}
