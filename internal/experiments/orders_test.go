package experiments

import (
	"testing"

	"sei/internal/homog"
	"sei/internal/seicore"
	"sei/internal/tensor"
)

func TestSplitConvStagesDetection(t *testing.T) {
	c := ctx(t)
	q := c.Quantized(2)
	// At 512, Network 2's conv2 (36 weights × 4 cells = 144 rows) fits.
	if got := splitConvStages(q, 512, seicore.ModeBipolar); len(got) != 0 {
		t.Fatalf("unexpected splits at 512: %v", got)
	}
	// At 64, it splits into ceil(36/16) = 3 blocks.
	got := splitConvStages(q, 64, seicore.ModeBipolar)
	if got[1] != 3 || len(got) != 1 {
		t.Fatalf("splits at 64: %v, want map[1:3]", got)
	}
	// Unipolar mode halves the rows: ceil(36/32) = 2 blocks.
	got = splitConvStages(q, 64, seicore.ModeUnipolarDynamic)
	if got[1] != 2 {
		t.Fatalf("unipolar splits at 64: %v, want map[1:2]", got)
	}
}

func TestHomogenizedOrdersForShape(t *testing.T) {
	c := ctx(t)
	q := c.Quantized(2)
	orders := HomogenizedOrdersFor(q, 64, 1)
	if len(orders) != len(q.Convs) {
		t.Fatalf("orders length %d, want %d", len(orders), len(q.Convs))
	}
	if orders[0] != nil {
		t.Fatal("non-split stage got an order")
	}
	if len(orders[1]) != 36 {
		t.Fatalf("split stage order length %d, want 36", len(orders[1]))
	}
	seen := make([]bool, 36)
	for _, idx := range orders[1] {
		if seen[idx] {
			t.Fatal("order is not a permutation")
		}
		seen[idx] = true
	}
	// The homogenized order must beat natural on the Equ.-10 distance.
	w := q.ConvMatrix(1)
	if homog.Distance(w, orders[1], 3) > homog.Distance(w, seicore.NaturalOrder(36), 3) {
		t.Fatal("homogenized order worse than natural")
	}
}

func TestRandomOrdersForDeterministic(t *testing.T) {
	c := ctx(t)
	q := c.Quantized(2)
	a := RandomOrdersFor(q, 64, 7)
	b := RandomOrdersFor(q, 64, 7)
	for i := range a[1] {
		if a[1][i] != b[1][i] {
			t.Fatal("random orders not reproducible for a fixed seed")
		}
	}
	cOrd := RandomOrdersFor(q, 64, 8)
	same := true
	for i := range a[1] {
		if a[1][i] != cOrd[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical random orders")
	}
}

func TestSortedOrderClusters(t *testing.T) {
	w := tensor.FromSlice([]float64{
		1, 1, // row 0, sum 2
		5, 5, // row 1, sum 10
		-3, 0, // row 2, sum -3
		2, 2, // row 3, sum 4
	}, 4, 2)
	order := sortedOrder(w)
	want := []int{1, 3, 0, 2}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("sortedOrder = %v, want %v", order, want)
		}
	}
}
