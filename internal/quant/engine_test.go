package quant

import (
	"strings"
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/obs"
	"sei/internal/tensor"
)

// runSearch extracts a fresh quantized net from `net` and runs the
// given search implementation, returning the net, the report, and the
// recorded counters.
func runSearch(t *testing.T, net *nn.Network, train *mnist.Dataset, cfg SearchConfig, workers int,
	search func(*QuantizedNet, *mnist.Dataset, SearchConfig) (*SearchReport, error)) (*QuantizedNet, *SearchReport, map[string]int64) {
	t.Helper()
	q, err := Extract(net, []int{1, 28, 28})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	q.Instrument(rec)
	cfg.Workers = workers
	cfg.Obs = rec
	report, err := search(q, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q, report, rec.CounterValues()
}

// comparableCounters drops the engine-shape counters whose totals
// legitimately differ between the incremental and naive sweeps: par_*
// scheduling counts (the engine runs one parallel region per candidate
// list instead of one per candidate) and the incremental-only
// skip/eval accounting. Everything else — candidate totals and every
// hardware counter — must match bit-for-bit.
func comparableCounters(all map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for k, v := range all {
		if strings.HasPrefix(k, "par_") {
			continue
		}
		switch k {
		case MetricRemainderSkipped, MetricRemainderEvals, MetricFCDeltaUpdates:
			continue
		}
		out[k] = v
	}
	return out
}

// TestIncrementalSearchMatchesReference is the engine's bit-identity
// property test: for both stock configs and Workers ∈ {1, 2, 8}, the
// crossing-aware engine must reproduce the naive reference's
// SearchReport — thresholds, max outputs, accuracies — the re-scaled
// weights, and the comparable counter totals exactly.
func TestIncrementalSearchMatchesReference(t *testing.T) {
	net := trainedNet2(t)
	train := mnist.Synthetic(400, 9)
	configs := map[string]SearchConfig{
		"default": DefaultSearchConfig(),
		"paper":   PaperSearchConfig(),
	}
	for name, cfg := range configs {
		cfg.Samples = 150
		t.Run(name, func(t *testing.T) {
			refQ, refR, refC := runSearch(t, net, train, cfg, 1, SearchThresholdsReference)
			refCounters := comparableCounters(refC)
			for _, workers := range []int{1, 2, 8} {
				q, r, c := runSearch(t, net, train, cfg, workers, SearchThresholds)
				if len(r.Layers) != len(refR.Layers) {
					t.Fatalf("workers=%d: %d layers, reference %d", workers, len(r.Layers), len(refR.Layers))
				}
				for l, lr := range r.Layers {
					want := refR.Layers[l]
					if lr.Threshold != want.Threshold || lr.Accuracy != want.Accuracy || lr.MaxOutput != want.MaxOutput {
						t.Fatalf("workers=%d layer %d: got %+v, reference %+v", workers, l, lr, want)
					}
					if q.Thresholds[l] != refQ.Thresholds[l] {
						t.Fatalf("workers=%d: threshold[%d] = %v, reference %v", workers, l, q.Thresholds[l], refQ.Thresholds[l])
					}
				}
				for l := range refQ.Convs {
					a, b := refQ.Convs[l].W.Data(), q.Convs[l].W.Data()
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("workers=%d: conv %d re-scaled weight %d differs", workers, l, i)
						}
					}
				}
				got := comparableCounters(c)
				if len(got) != len(refCounters) {
					t.Fatalf("workers=%d: counter sets differ: %v vs %v", workers, got, refCounters)
				}
				for k, v := range refCounters {
					if got[k] != v {
						t.Fatalf("workers=%d: counter %s = %d, reference %d", workers, k, got[k], v)
					}
				}
				if r.Stats.Evaluations == 0 || r.Stats.RemainderSkipped == 0 {
					t.Fatalf("workers=%d: engine recorded no work (stats %+v)", workers, r.Stats)
				}
				if refR.Stats != (SweepStats{}) {
					t.Fatalf("reference recorded engine stats %+v, want zero", refR.Stats)
				}
			}
		})
	}
}

// TestIncrementalSearchMatchesReferenceDeepNet covers the geometries
// the Network 2 fixture misses: three conv stages, one of them
// unpooled (pool ≤ 1 sweeps and a multi-stage float remainder).
func TestIncrementalSearchMatchesReferenceDeepNet(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an extra network")
	}
	train := mnist.Synthetic(300, 11)
	net := nn.NewDeepNetwork(3)
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 1
	nn.Train(net, train, tcfg)

	cfg := DefaultSearchConfig()
	cfg.Samples = 100
	refQ, refR, refC := runSearch(t, net, train, cfg, 1, SearchThresholdsReference)
	refCounters := comparableCounters(refC)
	for _, workers := range []int{1, 2, 8} {
		q, r, c := runSearch(t, net, train, cfg, workers, SearchThresholds)
		for l, lr := range r.Layers {
			want := refR.Layers[l]
			if lr != want {
				t.Fatalf("workers=%d layer %d: got %+v, reference %+v", workers, l, lr, want)
			}
			if q.Thresholds[l] != refQ.Thresholds[l] {
				t.Fatalf("workers=%d: threshold[%d] = %v, reference %v", workers, l, q.Thresholds[l], refQ.Thresholds[l])
			}
		}
		got := comparableCounters(c)
		for k, v := range refCounters {
			if got[k] != v {
				t.Fatalf("workers=%d: counter %s = %d, reference %d", workers, k, got[k], v)
			}
		}
	}
}

// TestSweepStatsAccounting pins the engine's internal bookkeeping on a
// real sweep: every (sample, candidate) evaluation is either skipped
// or paid for, and the skip rate exposes the long-tail structure the
// engine exploits (the overwhelming majority of candidate steps cross
// nothing).
func TestSweepStatsAccounting(t *testing.T) {
	net := trainedNet2(t)
	train := mnist.Synthetic(300, 13)
	cfg := DefaultSearchConfig()
	cfg.Samples = 100
	rec := obs.New()
	q, err := Extract(net, []int{1, 28, 28})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = rec
	r, err := SearchThresholds(q, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats
	if s.Evaluations <= 0 {
		t.Fatalf("no evaluations recorded: %+v", s)
	}
	// Per sample, the seed evaluation plus every non-skipped candidate
	// are the only remainder evaluations for non-last stages; for the
	// last stage non-skipped candidates are pure delta updates. So
	// skipped + evals can never exceed evaluations + seeds.
	if s.RemainderSkipped+s.RemainderEvals > s.Evaluations+int64(len(r.Layers))*100 {
		t.Fatalf("inconsistent accounting: %+v", s)
	}
	// Synthetic-MNIST activations are denser than the paper's long
	// tail, so the skip rate is moderate here (~0.32 on this fixture;
	// much higher on the last stage, where pooled absorption helps).
	if rate := s.SkipRate(); rate < 0.15 {
		t.Fatalf("skip rate %.3f, expected the crossing test to skip a solid fraction of candidate steps (%+v)", rate, s)
	}
	counters := rec.CounterValues()
	for _, k := range []string{MetricRemainderSkipped, MetricRemainderEvals, MetricThresholdCandidates} {
		if counters[k] == 0 {
			t.Fatalf("counter %s not recorded: %v", k, counters)
		}
	}
	if counters[MetricRemainderSkipped] != s.RemainderSkipped || counters[MetricRemainderEvals] != s.RemainderEvals || counters[MetricFCDeltaUpdates] != s.FCDeltaUpdates {
		t.Fatalf("counters %v disagree with report stats %+v", counters, s)
	}
	if g := rec.GaugeValues()[GaugeSearchSkipRate]; g != s.SkipRate() {
		t.Fatalf("gauge %v != skip rate %v", g, s.SkipRate())
	}
}

// TestBinarizeIntoReusesBuffer pins the satellite fix: the returned
// buffer is reused when shapes match and values equal binarize's.
func TestBinarizeIntoReusesBuffer(t *testing.T) {
	x := tensor.FromSlice([]float64{0.1, 0.5, 0.9, 0.3}, 1, 2, 2)
	a := binarizeInto(nil, x, 0.4)
	b := binarizeInto(a, x, 0.6)
	if a != b {
		t.Fatal("binarizeInto allocated a new buffer despite matching size")
	}
	want := binarize(x, 0.6)
	for i := range want.Data() {
		if a.Data()[i] != want.Data()[i] {
			t.Fatalf("binarizeInto value %d = %v, want %v", i, a.Data()[i], want.Data()[i])
		}
	}
}

// refineThresholdsReference replicates the pre-engine coordinate
// descent verbatim — every candidate threshold pays a full binarized
// Predict pass per sample — as the bit-identity baseline for the
// incremental refinement.
func refineThresholdsReference(q *QuantizedNet, train *mnist.Dataset, cfg RefineConfig) float64 {
	data := train
	if cfg.Samples > 0 && cfg.Samples < train.Len() {
		data = train.Subset(cfg.Samples)
	}
	accuracy := func() float64 {
		correct := 0
		for i := 0; i < data.Len(); i++ {
			if q.Predict(data.Images[i]) == data.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(data.Len())
	}
	best := accuracy()
	for round := 0; round < cfg.Rounds; round++ {
		improved := false
		for l := range q.Thresholds {
			orig := q.Thresholds[l]
			bestT := orig
			for k := -cfg.Radius; k <= cfg.Radius; k++ {
				if k == 0 {
					continue
				}
				t := orig + float64(k)*cfg.Step
				if t < 0 {
					continue
				}
				q.Thresholds[l] = t
				if acc := accuracy(); acc > best {
					best, bestT = acc, t
					improved = true
				}
			}
			q.Thresholds[l] = bestT
		}
		if !improved {
			break
		}
	}
	return best
}

// TestIncrementalRefineMatchesReference pins the refinement engine
// against the naive coordinate descent: returned accuracy and final
// thresholds bit-identical at Workers ∈ {1, 2, 8}.
func TestIncrementalRefineMatchesReference(t *testing.T) {
	refQ, train, _ := quantizedFixture(t)
	cfg := DefaultRefineConfig()
	cfg.Samples = 150
	refBest := refineThresholdsReference(refQ, train, cfg)
	for _, workers := range []int{1, 2, 8} {
		q, _, _ := quantizedFixture(t)
		c := cfg
		c.Workers = workers
		got, err := RefineThresholds(q, train, c)
		if err != nil {
			t.Fatal(err)
		}
		if got != refBest {
			t.Fatalf("workers=%d: best accuracy %v, reference %v", workers, got, refBest)
		}
		for l := range q.Thresholds {
			if q.Thresholds[l] != refQ.Thresholds[l] {
				t.Fatalf("workers=%d: threshold[%d] = %v, reference %v", workers, l, q.Thresholds[l], refQ.Thresholds[l])
			}
		}
	}
}
