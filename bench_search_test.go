package sei

// Calibration-path benchmarks for the crossing-aware incremental
// threshold-search engine (internal/quant/engine.go). The
// SearchThresholds/SearchThresholdsNaive pair measures the same
// Algorithm-1 search through the incremental engine and the retained
// pre-engine reference on the bench context's Network 2 (the network
// the Table 4/5 benches run), so the ratio is the engine speedup;
// `make bench-quant` records all three plus allocs/op and the derived
// speedup in bench-reports/history/BENCH_PR5.json.

import (
	"testing"

	"sei/internal/mnist"
	"sei/internal/quant"
)

// benchSearch runs one full Algorithm-1 search per iteration through
// the given implementation, on a fresh extraction each time (the
// search mutates weights and thresholds). Workers=1 isolates the
// algorithmic speedup from parallel scaling.
func benchSearch(b *testing.B, search func(*quant.QuantizedNet, *mnist.Dataset, quant.SearchConfig) (*quant.SearchReport, error)) {
	c := benchContext(b)
	net := c.Network(2)
	cfg := quant.DefaultSearchConfig()
	cfg.Samples = 100
	cfg.Workers = 1
	var report *quant.SearchReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q, err := quant.Extract(net, []int{1, 28, 28})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		report, err = search(q, c.Train, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if report.Stats.Evaluations > 0 {
		b.ReportMetric(report.Stats.SkipRate(), "skip_rate")
	}
}

// BenchmarkSearchThresholds measures the incremental crossing-aware
// search engine: sorted-activation sweeps, remainder skipping, FC
// delta updates, pooled arenas.
func BenchmarkSearchThresholds(b *testing.B) {
	benchSearch(b, quant.SearchThresholds)
}

// BenchmarkSearchThresholdsNaive measures the retained pre-engine
// reference (full remainder forward pass per candidate × sample, fresh
// buffers per call) — the baseline for the speedup and allocation
// numbers in bench-reports/history/BENCH_PR5.json.
func BenchmarkSearchThresholdsNaive(b *testing.B) {
	benchSearch(b, quant.SearchThresholdsReference)
}

// BenchmarkQuantizePipeline measures the full calibration pipeline —
// Algorithm-1 search, FC recalibration, coordinate-descent threshold
// refinement — end to end on all cores, the shape cmd/seisim pays
// before any inference experiment runs.
func BenchmarkQuantizePipeline(b *testing.B) {
	c := benchContext(b)
	net := c.Network(2)
	scfg := quant.DefaultSearchConfig()
	scfg.Samples = 100
	rcfg := quant.DefaultRecalibrateConfig()
	rcfg.Epochs = 2
	fcfg := quant.DefaultRefineConfig()
	fcfg.Samples = 100
	fcfg.Rounds = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, _, err := quant.QuantizeNetwork(net, c.Train, []int{1, 28, 28}, scfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := quant.RecalibrateFC(q, c.Train, rcfg); err != nil {
			b.Fatal(err)
		}
		if _, err := quant.RefineThresholds(q, c.Train, fcfg); err != nil {
			b.Fatal(err)
		}
	}
}
