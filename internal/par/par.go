// Package par is the repository's deterministic parallel execution
// engine. Every dataset-shaped hot path — network evaluation,
// Algorithm-1 threshold search, dynamic-threshold calibration, and the
// experiment sweeps — funnels through the chunked primitives here.
//
// Determinism contract: the work range [0,n) is split into fixed-size
// chunks whose boundaries depend only on n and the chunk size, never
// on the worker count. Workers pull chunks from a shared queue, so
// scheduling varies, but (a) per-index results land in dedicated
// slots, (b) reductions run serially in chunk-index order, and (c)
// any randomness is drawn from a per-chunk RNG seeded by ChunkSeed.
// Results are therefore bit-identical for every worker count,
// including Workers == 1, which runs the chunks in order on the
// calling goroutine with no goroutines spawned — the exact serial
// path.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultChunkSize is the fixed work-chunk granularity. It balances
// scheduling overhead against load balance for per-image workloads
// (one chunk ≈ a dozen forward passes) and must not depend on the
// worker count, or determinism under seeded chunks would break.
const DefaultChunkSize = 16

// Validate rejects nonsensical worker counts. 0 is valid and means
// "use all available cores"; use it as the config default.
func Validate(workers int) error {
	if workers < 0 {
		return fmt.Errorf("par: workers %d is negative (0 means all cores, 1 the serial path)", workers)
	}
	return nil
}

// Resolve maps a Workers config value to a concrete worker count:
// 0 resolves to runtime.GOMAXPROCS(0), positive values pass through.
// Negative values panic; configs are expected to Validate first.
func Resolve(workers int) int {
	if workers < 0 {
		panic(fmt.Sprintf("par: workers %d is negative; configs must reject this (Validate)", workers))
	}
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Chunk is one contiguous slice [Lo,Hi) of the work range, with its
// position in the fixed chunk sequence.
type Chunk struct {
	Index  int
	Lo, Hi int
}

// ChunkSeed derives a decorrelated RNG seed for one chunk from a base
// seed using a splitmix64-style mix, so neighbouring chunks do not
// get overlapping streams from math/rand's LCG-ish seeding.
func ChunkSeed(base int64, chunk int) int64 {
	z := uint64(base) + uint64(chunk+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// NumChunks returns the chunk count for n items at the given size — the
// shard count callers pass to obs.Recorder.Sharded so per-chunk shards
// line up one-to-one with Chunk.Index.
func NumChunks(n, chunkSize int) int {
	return numChunks(n, chunkSize)
}

// numChunks returns the chunk count for n items at the given size.
func numChunks(n, chunkSize int) int {
	if chunkSize <= 0 {
		panic(fmt.Sprintf("par: chunk size %d must be positive", chunkSize))
	}
	return (n + chunkSize - 1) / chunkSize
}

// chunkAt returns chunk i of the fixed sequence.
func chunkAt(i, n, chunkSize int) Chunk {
	lo := i * chunkSize
	hi := lo + chunkSize
	if hi > n {
		hi = n
	}
	return Chunk{Index: i, Lo: lo, Hi: hi}
}

// ForEachChunk invokes fn once per fixed-size chunk of [0,n), using up
// to `workers` goroutines (0 = all cores). fn must not touch state
// shared with other chunks except through dedicated per-index slots.
// With workers == 1 the chunks run in index order on the calling
// goroutine.
func ForEachChunk(workers, n, chunkSize int, fn func(Chunk)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers)
	nc := numChunks(n, chunkSize)
	if w == 1 || nc == 1 {
		for i := 0; i < nc; i++ {
			fn(chunkAt(i, n, chunkSize))
		}
		return
	}
	if w > nc {
		w = nc
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nc {
					return
				}
				fn(chunkAt(i, n, chunkSize))
			}
		}()
	}
	wg.Wait()
}

// ForEach invokes fn(i) for every i in [0,n) with the default chunk
// granularity. fn must only write state owned by index i.
func ForEach(workers, n int, fn func(i int)) {
	ForEachChunk(workers, n, DefaultChunkSize, func(c Chunk) {
		for i := c.Lo; i < c.Hi; i++ {
			fn(i)
		}
	})
}

// MapChunks evaluates fn on every chunk and returns the results in
// chunk-index order, regardless of completion order.
func MapChunks[T any](workers, n, chunkSize int, fn func(Chunk) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, numChunks(n, chunkSize))
	ForEachChunk(workers, n, chunkSize, func(c Chunk) {
		out[c.Index] = fn(c)
	})
	return out
}

// MapReduce evaluates mapper on every chunk and folds the per-chunk
// results with reduce strictly in chunk-index order, which keeps
// non-associative reductions (float sums) bit-identical for every
// worker count.
func MapReduce[T any](workers, n, chunkSize int, mapper func(Chunk) T, reduce func(acc, v T) T, init T) T {
	acc := init
	for _, v := range MapChunks(workers, n, chunkSize, mapper) {
		acc = reduce(acc, v)
	}
	return acc
}

// Count returns how many indices in [0,n) satisfy pred, evaluating
// the predicate in parallel. Integer addition is order-independent,
// so the result is exact for any worker count.
func Count(workers, n int, pred func(i int) bool) int {
	return MapReduce(workers, n, DefaultChunkSize,
		func(c Chunk) int {
			local := 0
			for i := c.Lo; i < c.Hi; i++ {
				if pred(i) {
					local++
				}
			}
			return local
		},
		func(a, b int) int { return a + b }, 0)
}
