package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestVGG19GeometryShape(t *testing.T) {
	geoms := VGG19Geometry()
	if len(geoms) != 19 { // 16 conv + 3 FC
		t.Fatalf("got %d layers, want 19", len(geoms))
	}
	// First conv: 3 channels × 3×3 = 27 rows, 64 kernels, 224² uses.
	g := geoms[0]
	if g.N != 27 || g.M != 64 || g.Uses != 224*224 {
		t.Fatalf("conv1 geometry %+v", g)
	}
	// Classifier: 25088 → 4096 → 4096 → 1000.
	if geoms[16].N != 25088 || geoms[18].M != 1000 {
		t.Fatalf("FC geometry wrong: %+v / %+v", geoms[16], geoms[18])
	}
}

func TestVGGAnalysisReproducesPaperMagnitudes(t *testing.T) {
	res, err := VGGAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~3×10⁷ intermediate data. VGG-19's conv outputs alone are
	// ≈1.5×10⁷; the paper's count (likely write+read, or including
	// pooling copies) is 2× that — same order.
	if res.IntermediateData < 1e7 || res.IntermediateData > 6e7 {
		t.Fatalf("intermediate data %.2e outside the paper's 3e7 order", float64(res.IntermediateData))
	}
	// Paper: ~10⁹ RRAM cells. 143.6M weights × 4 cells ≈ 5.7×10⁸.
	if res.WeightCells < 2e8 || res.WeightCells > 2e9 {
		t.Fatalf("weight cells %.2e outside the paper's 1e9 order", float64(res.WeightCells))
	}
	// VGG-19 forward ≈ 2×19.6G MACs ≈ 3.9e10 ops.
	if res.Ops < 2e10 || res.Ops > 8e10 {
		t.Fatalf("ops %.2e outside VGG-19's known ~4e10", float64(res.Ops))
	}
	// SEI's saving must persist at scale.
	if res.Saving < 0.90 {
		t.Fatalf("SEI saving %.4f at VGG scale, want ≥ 0.90", res.Saving)
	}
	var buf bytes.Buffer
	PrintVGG(&buf, res)
	if !strings.Contains(buf.String(), "VGG-19") {
		t.Fatal("Print output missing header")
	}
}

func TestSplitWideConservesCounts(t *testing.T) {
	geoms := VGG19Geometry()
	split := splitWide(geoms, 511)
	var mOrig, mSplit, outOrig, outSplit int64
	for _, g := range geoms {
		mOrig += int64(g.M)
		outOrig += int64(g.OutValues)
	}
	for _, g := range split {
		mSplit += int64(g.M)
		outSplit += int64(g.OutValues)
		if g.M > 511 {
			t.Fatalf("split layer %s still has %d columns", g.Name, g.M)
		}
	}
	if mOrig != mSplit || outOrig != outSplit {
		t.Fatalf("splitWide changed totals: M %d→%d, out %d→%d", mOrig, mSplit, outOrig, outSplit)
	}
}
