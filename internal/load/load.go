// Package load is a deterministic open-loop traffic generator for the
// serving stack. Open loop means the arrival schedule is fixed before
// the run starts: request i fires at its precomputed offset whether or
// not earlier requests have completed, so a slow server faces mounting
// concurrency instead of the coordinated-omission mercy a closed-loop
// (request → wait → request) driver grants it. The schedule itself is
// drawn from a seeded RNG — exponential inter-arrival gaps at the
// configured rate, i.e. a Poisson process — so the *offered load* of a
// run is a pure function of (Rate, Requests, Burst, Seed) and two runs
// with the same config stress the server with the same timeline.
//
// Latency is recorded into an obs.Histogram (obs.LatencyBounds()
// buckets, matching the server-side serve_request_seconds histogram)
// and summarized as interpolated p50/p99/p999 via obs quantile
// support. Wall-clock measurement is of course not deterministic —
// only the schedule is.
package load

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sei/internal/obs"
)

// latencyBounds is obs.LatencyBounds() computed once — Run resolves
// its histogram against this shared slice instead of rebuilding the
// ~63-element bound list per run.
var latencyBounds = obs.LatencyBounds()

// Config sizes one load run.
type Config struct {
	// Rate is the offered load in requests per second (must be > 0).
	Rate float64
	// Requests is the total number of requests in the schedule
	// (must be > 0).
	Requests int
	// Seed anchors the arrival-schedule RNG; equal seeds give equal
	// schedules.
	Seed int64
	// Timeout bounds one request (0 = no per-request timeout beyond
	// the run context).
	Timeout time.Duration
	// MaxInFlight caps concurrently outstanding requests. 0 means
	// unlimited — true open loop. When the cap is hit, further
	// arrivals are counted as dropped rather than delayed (the
	// schedule never slips; dropping preserves open-loop semantics
	// while bounding client resources).
	MaxInFlight int
	// Burst clusters arrivals: each Poisson schedule point fires Burst
	// requests back to back instead of one, with inter-point gaps
	// drawn at Rate/Burst so the aggregate offered rate stays Rate.
	// 0 or 1 means smooth Poisson arrivals.
	Burst int
}

// Validate rejects unusable configs.
func (c Config) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("load: rate %g must be positive", c.Rate)
	}
	if c.Requests <= 0 {
		return fmt.Errorf("load: %d requests must be positive", c.Requests)
	}
	if c.MaxInFlight < 0 {
		return fmt.Errorf("load: max in-flight %d must be non-negative", c.MaxInFlight)
	}
	if c.Burst < 0 {
		return fmt.Errorf("load: burst %d must be non-negative", c.Burst)
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	// Sent counts requests actually issued, stamped at issue time (the
	// moment the request goroutine launches, not at completion — an
	// in-flight tail is still "sent"). Errors counts issued requests
	// whose do returned non-nil. Dropped counts arrivals shed by the
	// MaxInFlight cap; Canceled counts arrivals skipped because the
	// run context ended. Sent + Dropped + Canceled == Requests.
	Sent, Errors, Dropped, Canceled int
	// Elapsed is first arrival to last completion.
	Elapsed time.Duration
	// OfferedRate is the configured rate; AchievedRate is successful
	// completions (Sent - Errors) per second of Elapsed — errored
	// requests don't count as achieved throughput.
	OfferedRate, AchievedRate float64
	// P50, P99, P999 are interpolated latency quantiles in seconds
	// over successful requests.
	P50, P99, P999 float64
	// MeanLatency is the arithmetic mean latency in seconds over
	// successful requests.
	MeanLatency float64
	// Latency is the full latency histogram snapshot (successful
	// requests; obs.LatencyBounds() buckets) for report persistence.
	Latency obs.HistogramReport
}

// Schedule returns the deterministic arrival offsets for cfg: Requests
// offsets grouped into bursts of cfg.Burst (1 when unset) at Poisson
// schedule points, exponential inter-point gaps at Rate/Burst from the
// seeded RNG. The first arrival is at offset 0 so short runs are not
// all warm-up gap.
func Schedule(cfg Config) []time.Duration {
	burst := cfg.Burst
	if burst < 1 {
		burst = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pointRate := cfg.Rate / float64(burst)
	offsets := make([]time.Duration, cfg.Requests)
	t := 0.0
	for i := 0; i < len(offsets); i += burst {
		point := time.Duration(t * float64(time.Second))
		for k := i; k < i+burst && k < len(offsets); k++ {
			offsets[k] = point
		}
		t += rng.ExpFloat64() / pointRate
	}
	return offsets
}

// Run drives do through cfg's arrival schedule and collects latency.
// do must be safe for concurrent use; it receives a context carrying
// the per-request timeout plus the request's schedule index, so a
// caller can vary the request shape deterministically (multi-image
// mixes, per-design routing). Run returns once every issued request
// has completed. Canceling ctx stops issuing new arrivals (counted as
// Canceled) and waits for the in-flight tail.
func Run(ctx context.Context, cfg Config, do func(ctx context.Context, i int) error) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if do == nil {
		return nil, errors.New("load: nil request function")
	}
	rec := obs.New()
	hist := rec.Histogram("load_latency_seconds", latencyBounds)
	var (
		wg       sync.WaitGroup
		failed   atomic.Int64
		inFlight atomic.Int64
	)
	sent, dropped, canceled := 0, 0, 0
	start := time.Now()
	for i, off := range Schedule(cfg) {
		if d := time.Until(start.Add(off)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			canceled++
			continue
		}
		if cfg.MaxInFlight > 0 && inFlight.Load() >= int64(cfg.MaxInFlight) {
			dropped++
			continue
		}
		// Issued: counted here, at launch, not at completion — "sent"
		// must not understate offered pressure while a tail is still
		// in flight.
		sent++
		inFlight.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer inFlight.Add(-1)
			rctx := ctx
			if cfg.Timeout > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
				defer cancel()
			}
			t0 := time.Now()
			err := do(rctx, i)
			lat := time.Since(t0).Seconds()
			if err != nil {
				failed.Add(1)
				return
			}
			hist.Observe(lat)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := &Result{
		Sent:        sent,
		Errors:      int(failed.Load()),
		Dropped:     dropped,
		Canceled:    canceled,
		Elapsed:     elapsed,
		OfferedRate: cfg.Rate,
		P50:         hist.Quantile(0.5),
		P99:         hist.Quantile(0.99),
		P999:        hist.Quantile(0.999),
	}
	if n := hist.Count(); n > 0 {
		res.MeanLatency = hist.Sum() / float64(n)
	}
	if elapsed > 0 {
		res.AchievedRate = float64(res.Sent-res.Errors) / elapsed.Seconds()
	}
	res.Latency = rec.Report("").Histograms["load_latency_seconds"]
	return res, nil
}
