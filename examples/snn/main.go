// Spiking inference: the paper's conclusion proposes using SEI "to
// support other applications using 1-bit data like RRAM-based Spiking
// Neural Networks". This example rate-codes the input image into
// Bernoulli spike trains — so even the input layer sees 1-bit data and
// the last remaining DACs disappear — and accumulates the classifier
// scores over timesteps (package internal/snn).
//
// With one timestep this is a hard stochastic binarization of the
// input (lossy); as timesteps accumulate, the spike rates approach the
// grayscale values and accuracy converges toward the DAC-driven
// design's.
//
// Run with: go run ./examples/snn
package main

import (
	"fmt"
	"log"
	"os"

	"sei"
)

func main() {
	train, test := sei.SyntheticSplit(2000, 300, 7)
	fmt.Fprintln(os.Stderr, "training and quantizing network 2...")
	net := sei.TrainTableNetwork(2, train, 4, 13)
	q, err := sei.Quantize(net, train)
	if err != nil {
		log.Fatal(err)
	}
	design, err := sei.BuildDesign(q, train, sei.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}

	// DAC-driven reference: analog grayscale input.
	analogErr := sei.EvaluateDesign(design, test)

	fmt.Println("Spiking (rate-coded 1-bit) input on the SEI design — Network 2")
	fmt.Printf("  analog input via DACs (reference)   %6.2f%%\n", 100*analogErr)
	for _, steps := range []int{1, 2, 4, 8, 16, 32} {
		e, err := sei.SpikingErrorRate(q, design, test, steps, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d spike timestep(s), no DACs       %6.2f%%\n", steps, 100*e)
	}
	fmt.Println("\nRate coding trades latency (timesteps) for the last DACs in the")
	fmt.Println("design — the SNN direction the paper's Section 6 points at. The")
	fmt.Println("error falls monotonically with timesteps but converges slowly: the")
	fmt.Println("input conv layer hard-thresholds each noisy spike frame before")
	fmt.Println("accumulation. Closing the residual gap needs spike-aware threshold")
	fmt.Println("calibration or training — exactly the future work the paper names.")
}
