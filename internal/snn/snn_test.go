package snn

import (
	"testing"

	"sei/internal/mnist"
	"sei/internal/nn"
	"sei/internal/quant"
	"sei/internal/tensor"
)

var fixture struct {
	q    *quant.QuantizedNet
	test *mnist.Dataset
}

func getFixture(t *testing.T) (*quant.QuantizedNet, *mnist.Dataset) {
	t.Helper()
	if fixture.q == nil {
		train := mnist.Synthetic(1500, 5)
		net := nn.NewTableNetwork(2, 7)
		nn.Train(net, train, nn.DefaultTrainConfig())
		cfg := quant.DefaultSearchConfig()
		cfg.Samples = 250
		q, _, err := quant.QuantizeNetwork(net, train, []int{1, 28, 28}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := quant.RecalibrateFC(q, train, quant.DefaultRecalibrateConfig()); err != nil {
			t.Fatal(err)
		}
		fixture.q = q
		fixture.test = mnist.Synthetic(150, 99)
	}
	return fixture.q, fixture.test
}

func TestEncoderRatesConverge(t *testing.T) {
	img := tensor.New(1, 28, 28)
	img.Data()[0] = 0.8
	img.Data()[1] = 0.2
	img.Data()[2] = 1.0
	enc := NewEncoder(1)
	const frames = 3000
	sum := tensor.New(1, 28, 28)
	for i := 0; i < frames; i++ {
		sum.AddInPlace(enc.Frame(img))
	}
	sum.Scale(1.0 / frames)
	if r := sum.Data()[0]; r < 0.76 || r > 0.84 {
		t.Fatalf("rate for 0.8 pixel: %v", r)
	}
	if r := sum.Data()[1]; r < 0.16 || r > 0.24 {
		t.Fatalf("rate for 0.2 pixel: %v", r)
	}
	if sum.Data()[2] != 1 {
		t.Fatalf("rate for saturated pixel: %v", sum.Data()[2])
	}
	if sum.Data()[3] != 0 {
		t.Fatalf("rate for zero pixel: %v", sum.Data()[3])
	}
}

func TestEncoderFramesAreBinary(t *testing.T) {
	img := mnist.Synthetic(1, 3).Images[0]
	enc := NewEncoder(2)
	for i := 0; i < 5; i++ {
		f := enc.Frame(img)
		for _, v := range f.Data() {
			if v != 0 && v != 1 {
				t.Fatalf("non-binary spike %v", v)
			}
		}
	}
}

func TestEncoderPanicsOnBadPixels(t *testing.T) {
	img := tensor.New(1, 28, 28)
	img.Data()[5] = 1.5
	defer func() {
		if recover() == nil {
			t.Fatal("accepted pixel > 1")
		}
	}()
	NewEncoder(1).Frame(img)
}

func TestErrorRateDeterministic(t *testing.T) {
	q, test := getFixture(t)
	sub := test.Subset(40)
	cfg := Config{Timesteps: 2, Aggregation: SumScores, Seed: 9}
	a, err := ErrorRate(q, q.Digital(), sub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErrorRate(q, q.Digital(), sub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("spiking evaluation not deterministic: %v vs %v", a, b)
	}
}

func TestMoreTimestepsHelp(t *testing.T) {
	q, test := getFixture(t)
	sub := test.Subset(100)
	curve, err := RateSweep(q, q.Digital(), sub, []int{1, 16}, 3)
	if err != nil {
		t.Fatal(err)
	}
	analog := q.ErrorRate(sub)
	t.Logf("analog %.4f, 1 step %.4f, 16 steps %.4f", analog, curve[0], curve[1])
	if curve[1] > curve[0]+0.02 {
		t.Fatalf("16 timesteps (%.4f) worse than 1 (%.4f)", curve[1], curve[0])
	}
	if curve[1] > analog+0.10 {
		t.Fatalf("16-step spiking error %.4f far above analog %.4f", curve[1], analog)
	}
}

func TestMajorityVoteWorks(t *testing.T) {
	q, test := getFixture(t)
	sub := test.Subset(60)
	cfg := Config{Timesteps: 8, Aggregation: MajorityVote, Seed: 4}
	e, err := ErrorRate(q, q.Digital(), sub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.5 {
		t.Fatalf("majority-vote error %.4f implausibly high", e)
	}
}

func TestClassifyValidation(t *testing.T) {
	q, test := getFixture(t)
	enc := NewEncoder(1)
	if _, err := Classify(q, q.Digital(), test.Images[0], Config{Timesteps: 0}, enc); err == nil {
		t.Fatal("accepted zero timesteps")
	}
	if _, err := Classify(q, q.Digital(), test.Images[0], Config{Timesteps: 1, Aggregation: Aggregation(9)}, enc); err == nil {
		t.Fatal("accepted unknown aggregation")
	}
}
