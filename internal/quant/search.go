package quant

import (
	"fmt"
	"math"

	"sei/internal/mnist"
	"sei/internal/obs"
	"sei/internal/par"
	"sei/internal/tensor"
)

// Search instrumentation metric names (recorded on SearchConfig.Obs /
// RefineConfig.Obs).
const (
	// MetricThresholdCandidates counts candidate thresholds scored by
	// Algorithm 1 (coarse + fine, summed over conv stages).
	MetricThresholdCandidates = "quant_threshold_candidates"
	// MetricRefineCandidates counts candidate thresholds scored by the
	// coordinate-descent refinement (plus its baseline evaluation).
	MetricRefineCandidates = "quant_refine_candidates"
	// MetricRemainderSkipped counts (sample, candidate) evaluations the
	// incremental engine answered without touching the remainder of the
	// network: no activation crossed between consecutive thresholds (or
	// every crossing was absorbed by a still-populated OR-pool window),
	// so the remainder input — hence the prediction — is provably
	// unchanged.
	MetricRemainderSkipped = "quant_remainder_skipped"
	// MetricRemainderEvals counts full remainder evaluations the engine
	// actually ran (the seeding pass per sample plus every candidate
	// whose remainder input changed; the FC delta-update short cut is
	// counted separately).
	MetricRemainderEvals = "quant_remainder_evals"
	// MetricFCDeltaUpdates counts exact FC delta updates: last-stage
	// pooled bits that turned off and were applied to the classifier
	// scores as per-column subtractions instead of a fresh MatVec.
	MetricFCDeltaUpdates = "quant_fc_delta_updates"
	// GaugeSearchSkipRate is RemainderSkipped/Evaluations of the last
	// SearchThresholds run — the fraction of candidate evaluations the
	// crossing test answered for free.
	GaugeSearchSkipRate = "quant_search_skip_rate"
)

// SearchConfig controls Algorithm 1 (Threshold Searching Algorithm).
type SearchConfig struct {
	// ThresMin/ThresMax bound the brute-force interval. The paper
	// searches [0, 0.1]: after re-scaling, outputs lie in [0,1] and the
	// long-tail distribution puts the optimum well below 0.1.
	ThresMin, ThresMax float64
	// CoarseStep is the first sweep's step; FineStep refines around the
	// coarse optimum (a two-resolution version of the paper's single
	// SearchStep, same brute-force spirit at lower cost).
	CoarseStep, FineStep float64
	// Samples caps how many training samples drive the search
	// (0 = use the whole set). The paper uses all 60k; a subsample
	// preserves the optimum because only the argmax over a smooth
	// accuracy curve matters.
	Samples int
	// Workers bounds the parallel engine's goroutines (0 = all cores,
	// 1 = the serial path). Every worker count yields bit-identical
	// thresholds: candidate scoring is an order-independent count and
	// sample chunking is fixed.
	Workers int
	// Obs, when set, receives search counters (quant_threshold_candidates,
	// the incremental-engine skip/eval counters, and the engine
	// scheduling metrics) plus per-stage search spans; nil disables
	// recording.
	Obs *obs.Recorder
}

// DefaultSearchConfig uses a wider interval than the paper's [0, 0.1]:
// the synthetic-MNIST networks place their accuracy optimum above 0.1
// (denser early-layer features than CaffeNet's), and since weight
// re-scaling bounds outputs to [0,1] a wider brute-force sweep is
// harmless. PaperSearchConfig reproduces the paper's exact interval.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		ThresMin:   0,
		ThresMax:   0.6,
		CoarseStep: 0.03,
		FineStep:   0.005,
		Samples:    500,
	}
}

// PaperSearchConfig is the literal Algorithm-1 interval: thresholds
// searched from 0 to 0.1.
func PaperSearchConfig() SearchConfig {
	return SearchConfig{
		ThresMin:   0,
		ThresMax:   0.1,
		CoarseStep: 0.01,
		FineStep:   0.002,
		Samples:    500,
	}
}

// LayerSearchResult records one layer's outcome.
type LayerSearchResult struct {
	Layer     int
	MaxOutput float64 // re-scaling divisor (max activation before scaling)
	Threshold float64
	Accuracy  float64 // training-subsample accuracy at the chosen threshold
}

// SweepStats is the incremental engine's work accounting: how many
// (sample, candidate) evaluations the sweep faced and how it answered
// them. The reference implementation leaves it zero — the stats
// describe engine effort, not search outcomes, and are excluded from
// the bit-identity contract.
type SweepStats struct {
	// Evaluations is the number of (sample, candidate) pairs scored.
	Evaluations int64
	// RemainderSkipped counts evaluations answered by the crossing test
	// alone (remainder input unchanged since the previous candidate).
	RemainderSkipped int64
	// RemainderEvals counts full remainder evaluations (per-sample
	// seeding plus candidates whose remainder input changed).
	RemainderEvals int64
	// FCDeltaUpdates counts last-stage pooled bits applied to the
	// classifier scores as exact per-column delta subtractions.
	FCDeltaUpdates int64
}

// SkipRate is the fraction of evaluations answered without touching
// the remainder of the network.
func (s SweepStats) SkipRate() float64 {
	if s.Evaluations == 0 {
		return 0
	}
	return float64(s.RemainderSkipped) / float64(s.Evaluations)
}

func (s *SweepStats) add(o SweepStats) {
	s.Evaluations += o.Evaluations
	s.RemainderSkipped += o.RemainderSkipped
	s.RemainderEvals += o.RemainderEvals
	s.FCDeltaUpdates += o.FCDeltaUpdates
}

// SearchReport is the outcome of Algorithm 1.
type SearchReport struct {
	Layers []LayerSearchResult
	// Stats is the incremental engine's work accounting (zero when the
	// reference sweep produced the report).
	Stats SweepStats
}

// layerSweeper scores one conv stage's candidate thresholds: given an
// ascending candidate list it returns, per candidate, how many search
// samples the remainder of the network classifies correctly at that
// threshold.
type layerSweeper func(ts []float64) []int

// sweeperFactory builds a layerSweeper for conv stage l over the
// re-scaled stage outputs convOut. Implementations: the crossing-aware
// incremental engine (engine.go) and the retained naive reference
// below.
type sweeperFactory func(q *QuantizedNet, l int, convOut []*tensor.Tensor, labels []int, cfg SearchConfig, stats *SweepStats) layerSweeper

// SearchThresholds runs Algorithm 1 on q in place: for each conv stage
// in order it (1) computes the stage's outputs under the already-
// quantized prefix, (2) re-scales the stage weights so outputs lie in
// [0,1], and (3) brute-force searches the binarization threshold that
// maximizes training accuracy through the *float* remainder of the
// network (the layer-by-layer greedy strategy).
//
// Candidate scoring runs on the incremental crossing-aware engine
// (engine.go); thresholds, accuracies and hardware-counter totals are
// bit-identical to SearchThresholdsReference at every worker count.
func SearchThresholds(q *QuantizedNet, train *mnist.Dataset, cfg SearchConfig) (*SearchReport, error) {
	return searchThresholds(q, train, cfg, newIncrementalSweeper)
}

// SearchThresholdsReference runs Algorithm 1 with the retained naive
// sweep: every candidate threshold re-binarizes every sample and runs
// the full float remainder of the network. It is the verification
// baseline the property tests and bench-reports/history/BENCH_PR5.json pin the incremental
// engine against, and matches the pre-engine implementation
// bit-for-bit.
func SearchThresholdsReference(q *QuantizedNet, train *mnist.Dataset, cfg SearchConfig) (*SearchReport, error) {
	return searchThresholds(q, train, cfg, newNaiveSweeper)
}

func searchThresholds(q *QuantizedNet, train *mnist.Dataset, cfg SearchConfig, factory sweeperFactory) (*SearchReport, error) {
	if cfg.ThresMax <= cfg.ThresMin || cfg.CoarseStep <= 0 || cfg.FineStep <= 0 {
		return nil, fmt.Errorf("quant: invalid search config %+v", cfg)
	}
	if err := par.Validate(cfg.Workers); err != nil {
		return nil, fmt.Errorf("quant: search config: %w", err)
	}
	data := train
	if cfg.Samples > 0 && cfg.Samples < train.Len() {
		data = train.Subset(cfg.Samples)
	}
	if data.Len() == 0 {
		return nil, fmt.Errorf("quant: empty training set")
	}
	report := &SearchReport{}
	eval := q.Digital()

	// entries[i] is the activation entering the stage currently being
	// searched; starts as the raw images and is advanced through each
	// finished stage's binarized pipeline.
	entries := make([]*tensor.Tensor, data.Len())
	copy(entries, data.Images)

	for l := range q.Convs {
		sp := cfg.Obs.StartSpan(fmt.Sprintf("search/conv%d", l))
		// Step 1: stage outputs under the quantized prefix. Each
		// sample's output lands in its own slot; the per-chunk maxima
		// fold in chunk order (max is order-independent anyway).
		convOut := make([]*tensor.Tensor, data.Len())
		maxOut := par.MapReduceRec(cfg.Obs, cfg.Workers, data.Len(), par.DefaultChunkSize,
			func(c par.Chunk) float64 {
				m := 0.0
				for i := c.Lo; i < c.Hi; i++ {
					convOut[i] = floatConv(&q.Convs[l], entries[i])
					if v := convOut[i].Max(); v > m {
						m = v
					}
				}
				return m
			},
			math.Max, 0)
		if maxOut <= 1e-12 {
			sp.End()
			return nil, fmt.Errorf("quant: conv stage %d produces no positive outputs; network is dead", l)
		}

		// Step 2: weight re-scaling (Algorithm 1 line 4). Scaling the
		// weights scales the outputs; it cannot change the float
		// network's classification.
		q.Convs[l].W.Scale(1 / maxOut)
		par.ForEachRec(cfg.Obs, cfg.Workers, len(convOut), func(i int) {
			convOut[i].Scale(1 / maxOut)
		})

		// Step 3: brute-force threshold search, coarse then fine. The
		// sweeper scores a whole ascending candidate list at once;
		// q is read-only until the chosen threshold is committed.
		sweep := factory(q, l, convOut, data.Labels, cfg, &report.Stats)
		score := func(ts []float64) []float64 {
			cfg.Obs.Counter(MetricThresholdCandidates).Add(int64(len(ts)))
			counts := sweep(ts)
			accs := make([]float64, len(ts))
			for i, c := range counts {
				accs[i] = float64(c) / float64(len(convOut))
			}
			return accs
		}
		bestT, bestAcc := cfg.ThresMin, -1.0
		coarse := thresholdCandidates(cfg.ThresMin, cfg.ThresMax, cfg.CoarseStep)
		for i, acc := range score(coarse) {
			if acc > bestAcc {
				bestT, bestAcc = coarse[i], acc
			}
		}
		lo := math.Max(cfg.ThresMin, bestT-cfg.CoarseStep)
		hi := math.Min(cfg.ThresMax, bestT+cfg.CoarseStep)
		fine := thresholdCandidates(lo, hi, cfg.FineStep)
		for i, acc := range score(fine) {
			if acc > bestAcc {
				bestT, bestAcc = fine[i], acc
			}
		}
		q.Thresholds[l] = bestT
		report.Layers = append(report.Layers, LayerSearchResult{
			Layer: l, MaxOutput: maxOut, Threshold: bestT, Accuracy: bestAcc,
		})
		sp.AddSamples(int64(data.Len()))
		sp.End()

		// Advance the cached entries through the now-final stage.
		par.ForEachRec(cfg.Obs, cfg.Workers, len(entries), func(i int) {
			entries[i] = q.convStage(eval, l, entries[i])
		})
	}
	if report.Stats.Evaluations > 0 {
		cfg.Obs.Gauge(GaugeSearchSkipRate).Set(report.Stats.SkipRate())
	}
	return report, nil
}

// thresholdCandidates materializes the brute-force loop
// `for t := lo; t <= hi+1e-12; t += step` as an ascending slice,
// preserving the exact float accumulation of the original sweep so the
// searched thresholds stay bit-identical.
func thresholdCandidates(lo, hi, step float64) []float64 {
	var ts []float64
	for t := lo; t <= hi+1e-12; t += step {
		ts = append(ts, t)
	}
	return ts
}

// newNaiveSweeper is the retained reference sweep: one parallel pass
// over the samples per candidate, each (sample, candidate) pair paying
// a fresh binarize + OR pool + full float remainder. Only the binarize
// buffer is reused (chunk-local, see binarizeInto); everything else
// matches the pre-engine implementation, including its par_* scheduling
// counter totals.
func newNaiveSweeper(q *QuantizedNet, l int, convOut []*tensor.Tensor, labels []int, cfg SearchConfig, stats *SweepStats) layerSweeper {
	pool := q.Convs[l].PoolSize
	return func(ts []float64) []int {
		counts := make([]int, len(ts))
		for c, t := range ts {
			total := 0
			for _, v := range par.MapChunksRec(cfg.Obs, cfg.Workers, len(convOut), par.DefaultChunkSize, func(ch par.Chunk) int {
				var bits *tensor.Tensor
				local := 0
				for i := ch.Lo; i < ch.Hi; i++ {
					bits = binarizeInto(bits, convOut[i], t)
					x := bits
					if pool > 1 {
						x = orPool(bits, pool)
					}
					if floatRemainder(q, l+1, x) == labels[i] {
						local++
					}
				}
				return local
			}) {
				total += v
			}
			counts[c] = total
		}
		return counts
	}
}

// floatConv computes the real-valued convolution of one stage on an
// input map (no ReLU, no pooling): the "Output(L)" of Algorithm 1.
func floatConv(c *ConvSpec, in *tensor.Tensor) *tensor.Tensor {
	kh, kw := c.W.Dim(2), c.W.Dim(3)
	cols := tensor.Im2Col(in, kh, kw, c.Stride)
	wmat := c.W.Reshape(c.Filters(), c.FanIn())
	prod := tensor.MatMul(wmat, tensor.Transpose2D(cols))
	h, w := in.Dim(1), in.Dim(2)
	outH := (h-kh)/c.Stride + 1
	outW := (w-kw)/c.Stride + 1
	return prod.Reshape(c.Filters(), outH, outW)
}

// binarize thresholds a real map into a fresh 0/1 map.
func binarize(x *tensor.Tensor, t float64) *tensor.Tensor {
	return binarizeInto(nil, x, t)
}

// binarizeInto thresholds x into dst, overwriting every element; dst
// is allocated when nil or of the wrong size, so sweep loops can reuse
// one buffer across candidates and samples instead of allocating a
// tensor per (sample, candidate) pair. Returns the buffer in use.
func binarizeInto(dst, x *tensor.Tensor, t float64) *tensor.Tensor {
	if dst == nil || dst.Len() != x.Len() {
		dst = tensor.New(x.Shape()...)
	}
	d := dst.Data()
	for i, v := range x.Data() {
		if v > t {
			d[i] = 1
		} else {
			d[i] = 0
		}
	}
	return dst
}

// maxPool is float max pooling (used only in the float remainder of
// the greedy search; the quantized pipeline uses orPool).
func maxPool(x *tensor.Tensor, size int) *tensor.Tensor {
	out := tensor.New(x.Dim(0), x.Dim(1)/size, x.Dim(2)/size)
	maxPoolInto(out, x, size)
	return out
}

// maxPoolInto writes the float max pool of x ([c,h,w]) into dst
// ([c, h/size, w/size]) using direct Data() indexing — it sits inside
// the hot remainder loop, where the bounds-checked At/Set accessors
// cost more than the comparisons.
func maxPoolInto(dst, x *tensor.Tensor, size int) {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := dst.Dim(1), dst.Dim(2)
	xd, od := x.Data(), dst.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				for ky := 0; ky < size; ky++ {
					row := base + (oy*size+ky)*w + ox*size
					for kx := 0; kx < size; kx++ {
						if v := xd[row+kx]; v > best {
							best = v
						}
					}
				}
				od[(ch*oh+oy)*ow+ox] = best
			}
		}
	}
}

// floatRemainder runs stages from (the input of conv stage `from`)
// through the original float semantics — conv, ReLU, max-pool — and
// the FC classifier, returning the predicted class. This is the
// not-yet-quantized tail of the greedy search (the allocating
// reference; the engine's arena-backed replica is in engine.go).
func floatRemainder(q *QuantizedNet, from int, x *tensor.Tensor) int {
	for l := from; l < len(q.Convs); l++ {
		x = floatConv(&q.Convs[l], x)
		for i, v := range x.Data() {
			if v < 0 {
				x.Data()[i] = 0
			}
		}
		if q.Convs[l].PoolSize > 1 {
			x = maxPool(x, q.Convs[l].PoolSize)
		}
	}
	y := tensor.MatVec(q.FC.W, x.Data())
	for i := range y {
		y[i] += q.FC.B[i]
	}
	return tensor.FromSlice(y, len(y)).ArgMax()
}
