package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"sei/internal/arch"
	"sei/internal/baseline"
	"sei/internal/homog"
	"sei/internal/power"
	"sei/internal/seicore"
)

// HomogStudyRow compares ordering strategies for one split matrix —
// the ablation behind the paper's "total distance can be reduced about
// 80% to 90%" claim and the DESIGN.md GA-vs-greedy design choice.
type HomogStudyRow struct {
	Stage       int // conv stage index
	K           int
	NaturalDist float64
	RandomMean  float64 // mean distance over random orders
	GreedyDist  float64 // serpentine heuristic
	GADist      float64 // genetic algorithm
	GAReduction float64 // vs natural
}

// HomogenizationStudy measures Equ.-10 distances for every split conv
// stage of a network under each ordering strategy.
func HomogenizationStudy(c *Context, networkID, maxSize int) []HomogStudyRow {
	q := c.QuantizedCalibrated(networkID)
	split := splitConvStages(q, maxSize, seicore.ModeBipolar)
	rng := rand.New(rand.NewSource(c.Cfg.Seed))
	var rows []HomogStudyRow
	for l, k := range split {
		w := q.ConvMatrix(l)
		n := w.Dim(0)
		row := HomogStudyRow{
			Stage:       l,
			K:           k,
			NaturalDist: homog.Distance(w, seicore.NaturalOrder(n), k),
			GreedyDist:  homog.Distance(w, homog.GreedySerpentine(w, k), k),
		}
		const samples = 10
		for s := 0; s < samples; s++ {
			row.RandomMean += homog.Distance(w, homog.RandomOrder(n, rng), k)
		}
		row.RandomMean /= samples
		cfg := homog.DefaultGAConfig()
		cfg.Seed = c.Cfg.Seed + int64(l)
		res, err := homog.Homogenize(w, k, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: homogenization study stage %d: %v", l, err))
		}
		row.GADist = res.Distance
		row.GAReduction = res.Reduction()
		rows = append(rows, row)
	}
	return rows
}

// PrintHomogStudy renders the ordering comparison.
func PrintHomogStudy(w io.Writer, networkID int, rows []HomogStudyRow) {
	fmt.Fprintf(w, "Homogenization study (Network %d): Equ.-10 distance by ordering strategy\n", networkID)
	fmt.Fprintf(w, "  %-6s %3s %10s %10s %10s %10s %10s\n",
		"stage", "K", "natural", "random", "greedy", "GA", "reduction")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6d %3d %10.4f %10.4f %10.4f %10.4f %9.1f%%\n",
			r.Stage, r.K, r.NaturalDist, r.RandomMean, r.GreedyDist, r.GADist, 100*r.GAReduction)
	}
	fmt.Fprintln(w, "  (paper: homogenization reduces the distance by ~80-90% vs natural order)")
}

// TimingRow summarizes one structure's latency/throughput for a
// network — the buffer/time trade-off discussion of Section 5.3.
type TimingRow struct {
	Structure seicore.Structure
	Replicas  int
	LatencyUS float64
	KPicsPerS float64
	AreaMM2   float64
}

// TimingStudy evaluates latency, throughput and area for the three
// structures at 1 and R conv-layer replicas.
func TimingStudy(c *Context, networkID, replicas int) ([]TimingRow, error) {
	q := c.QuantizedCalibrated(networkID)
	geoms, err := arch.GeometryOf(q)
	if err != nil {
		return nil, err
	}
	lib := power.DefaultLibrary()
	var rows []TimingRow
	for _, s := range []seicore.Structure{seicore.StructDACADC, seicore.StructOneBitADC, seicore.StructSEI} {
		m, err := arch.Map(geoms, arch.DefaultConfig(s))
		if err != nil {
			return nil, err
		}
		for _, r := range []int{1, replicas} {
			tc := arch.DefaultTimingConfig()
			tc.Replicas = r
			tm, err := m.Timing(tc)
			if err != nil {
				return nil, err
			}
			area, err := m.ReplicaArea(lib, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TimingRow{
				Structure: s,
				Replicas:  r,
				LatencyUS: tm.LatencyNS / 1000,
				KPicsPerS: tm.ThroughputPicsPerSec / 1000,
				AreaMM2:   power.SquareMM(area),
			})
			if r == replicas && replicas == 1 {
				break
			}
		}
	}
	return rows, nil
}

// PrintTiming renders the timing study.
func PrintTiming(w io.Writer, networkID int, rows []TimingRow) {
	fmt.Fprintf(w, "Timing study (Network %d): buffer/replica vs time trade-off (Section 5.3)\n", networkID)
	fmt.Fprintf(w, "  %-17s %9s %12s %14s %10s\n", "structure", "replicas", "latency(us)", "kpics/s", "area(mm2)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-17s %9d %12.2f %14.1f %10.4f\n",
			r.Structure, r.Replicas, r.LatencyUS, r.KPicsPerS, r.AreaMM2)
	}
}

// EfficiencyRow is one platform of the Section-5.3 comparison.
type EfficiencyRow struct {
	Name     string
	GOPsPerJ float64
	VsFPGA   float64
	VsGPU    float64
}

// EfficiencyComparison compares the SEI designs of the given networks
// against the published FPGA and GPU baselines.
func EfficiencyComparison(c *Context, networkIDs ...int) []EfficiencyRow {
	lib := power.DefaultLibrary()
	fpga := baseline.FPGA().EfficiencyGOPsPerJ()
	gpu := baseline.GPU().EfficiencyGOPsPerJ()
	rows := []EfficiencyRow{
		{Name: baseline.FPGA().Name, GOPsPerJ: fpga, VsFPGA: 1, VsGPU: fpga / gpu},
		{Name: baseline.GPU().Name, GOPsPerJ: gpu, VsFPGA: gpu / fpga, VsGPU: 1},
	}
	for _, id := range networkIDs {
		q := c.QuantizedCalibrated(id)
		geoms, err := arch.GeometryOf(q)
		if err != nil {
			panic(fmt.Sprintf("experiments: efficiency comparison: %v", err))
		}
		m, err := arch.Map(geoms, arch.DefaultConfig(seicore.StructSEI))
		if err != nil {
			panic(fmt.Sprintf("experiments: efficiency comparison: %v", err))
		}
		eff := m.Efficiency(lib)
		rows = append(rows, EfficiencyRow{
			Name:     fmt.Sprintf("SEI Network %d", id),
			GOPsPerJ: eff,
			VsFPGA:   eff / fpga,
			VsGPU:    eff / gpu,
		})
	}
	return rows
}

// PrintEfficiency renders the comparison.
func PrintEfficiency(w io.Writer, rows []EfficiencyRow) {
	fmt.Fprintln(w, "Efficiency comparison (Section 5.3)")
	fmt.Fprintf(w, "  %-24s %12s %10s %10s\n", "platform", "GOPs/J", "vs FPGA", "vs GPU")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-24s %12.1f %9.1fx %9.1fx\n", r.Name, r.GOPsPerJ, r.VsFPGA, r.VsGPU)
	}
}
